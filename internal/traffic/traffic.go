// Package traffic models multi-hop circuit-switched traffic loads: flows
// with sizes, sources, destinations and candidate routes, plus the exact
// integer packet-weight arithmetic used throughout the scheduler.
//
// The paper assigns each packet a weight equal to the inverse of its flow
// route's hop count. To keep every ψ/benefit computation exact and the
// resulting schedules bit-for-bit deterministic, weights are scaled
// integers: a packet on an l-hop route weighs WeightScale/l, where
// WeightScale is divisible by every l up to MaxRouteLen and by the 64ths
// used for the Octopus-e ε hop bonus.
package traffic

import (
	"errors"
	"fmt"

	"octopus/internal/graph"
)

// MaxRouteLen is the maximum supported number of hops in a flow route. The
// paper assumes network diameters of 2-4; 12 leaves generous headroom while
// keeping weights exactly representable.
const MaxRouteLen = 12

// WeightScale is the integer weight of a 1-hop packet: lcm(1..12) * 64.
// A packet on an l-hop route weighs WeightScale/l exactly.
const WeightScale = 27720 * 64

// Weight returns the exact scaled weight of a packet whose flow route has
// the given number of hops.
func Weight(hops int) int64 {
	if hops < 1 || hops > MaxRouteLen {
		panic(fmt.Sprintf("traffic: route hops %d out of range [1,%d]", hops, MaxRouteLen))
	}
	return WeightScale / int64(hops)
}

// HopWeight returns the Octopus-e benefit weight of the hop x hops away
// from the source (x = 0 for the first hop) of an l-hop route, with ε
// expressed in 1/64 units: weight * (1 + x*eps64/64), exactly.
func HopWeight(l, x, eps64 int) int64 {
	if x < 0 || x >= l {
		panic(fmt.Sprintf("traffic: hop index %d out of range for %d-hop route", x, l))
	}
	return Weight(l) + int64(x)*int64(eps64)*(27720/int64(l))
}

// Route is a flow route: the sequence of nodes from source to destination.
type Route []int

// Hops returns the number of hops (edges) in the route.
func (r Route) Hops() int { return len(r) - 1 }

// Src returns the route's first node.
func (r Route) Src() int { return r[0] }

// Dst returns the route's last node.
func (r Route) Dst() int { return r[len(r)-1] }

// Equal reports whether two routes visit the same node sequence.
func (r Route) Equal(o Route) bool {
	if len(r) != len(o) {
		return false
	}
	for i := range r {
		if r[i] != o[i] {
			return false
		}
	}
	return true
}

// Flow is one traffic flow: Size packets from Src to Dst, with one or more
// candidate Routes to choose from (a single route is the common case; the
// Octopus+ joint routing/scheduling problem uses several).
type Flow struct {
	ID     int     `json:"id"`
	Size   int     `json:"size"`
	Src    int     `json:"src"`
	Dst    int     `json:"dst"`
	Routes []Route `json:"routes"`

	// WeightHops, when positive, overrides the hop count from which the
	// flow's packet weight is derived (weight = 1/WeightHops), independent
	// of the actual route length. The UB baseline uses this so the
	// unordered one-hop decomposition of a flow keeps the original flow's
	// packet weight. Must be at least the hop count of every route.
	WeightHops int `json:"weight_hops,omitempty"`

	// Critical marks the flow as eligible for proactive redundancy: the
	// Redundant transform provisions disjoint alternate routes only for
	// critical flows (see MarkCritical).
	Critical bool `json:"critical,omitempty"`

	// Redundant, when > 1, records that the flow's Routes hold that many
	// pairwise edge-disjoint routes provisioned by the Redundant transform
	// (primary first). ExpandRedundant turns them into per-copy flows.
	Redundant int `json:"redundant,omitempty"`
}

// WeightLen returns the hop count from which packet weights for route r of
// this flow are derived: WeightHops if set, otherwise r's own hop count.
func (f *Flow) WeightLen(r Route) int {
	if f.WeightHops > 0 {
		return f.WeightHops
	}
	return r.Hops()
}

// Weight returns the packet weight of the flow's primary (first) route.
func (f *Flow) Weight() int64 { return Weight(f.WeightLen(f.Routes[0])) }

// Load is a traffic load: the set of flows to schedule within a window.
type Load struct {
	Flows []Flow `json:"flows"`
}

// TotalPackets returns the total number of packets across all flows.
func (l *Load) TotalPackets() int {
	total := 0
	for i := range l.Flows {
		total += l.Flows[i].Size
	}
	return total
}

// MaxHops returns 𝒟, the maximum route length over all flows and route
// choices, or 0 for an empty load.
func (l *Load) MaxHops() int {
	d := 0
	for i := range l.Flows {
		for _, r := range l.Flows[i].Routes {
			if r.Hops() > d {
				d = r.Hops()
			}
		}
	}
	return d
}

// TotalWeightedHops returns the maximum attainable ψ value: every packet
// traversing its full primary route contributes hops·weight (= WeightScale
// unless the flow overrides WeightHops).
func (l *Load) TotalWeightedHops() int64 {
	var total int64
	for i := range l.Flows {
		f := &l.Flows[i]
		r := f.Routes[0]
		total += int64(f.Size) * int64(r.Hops()) * Weight(f.WeightLen(r))
	}
	return total
}

// TotalHops returns the total packet-hops required to deliver every packet
// over its primary route (used by the absolute capacity upper bound).
func (l *Load) TotalHops() int {
	total := 0
	for i := range l.Flows {
		total += l.Flows[i].Size * l.Flows[i].Routes[0].Hops()
	}
	return total
}

// Clone returns a deep copy of the load.
func (l *Load) Clone() *Load {
	c := &Load{Flows: make([]Flow, len(l.Flows))}
	for i, f := range l.Flows {
		cf := f
		cf.Routes = make([]Route, len(f.Routes))
		for j, r := range f.Routes {
			cf.Routes[j] = append(Route(nil), r...)
		}
		c.Flows[i] = cf
	}
	return c
}

// Validate checks structural invariants of the load against the fabric g:
// unique flow IDs, positive sizes, at least one route per flow, every route
// a valid path of g from Src to Dst with at most MaxRouteLen hops.
func (l *Load) Validate(g *graph.Digraph) error {
	seen := make(map[int]bool, len(l.Flows))
	for i := range l.Flows {
		f := &l.Flows[i]
		if seen[f.ID] {
			return fmt.Errorf("traffic: duplicate flow ID %d", f.ID)
		}
		seen[f.ID] = true
		if f.Size <= 0 {
			return fmt.Errorf("traffic: flow %d has non-positive size %d", f.ID, f.Size)
		}
		if len(f.Routes) == 0 {
			return fmt.Errorf("traffic: flow %d has no routes", f.ID)
		}
		if f.WeightHops < 0 || f.WeightHops > MaxRouteLen {
			return fmt.Errorf("traffic: flow %d has invalid WeightHops %d", f.ID, f.WeightHops)
		}
		if f.Redundant < 0 || f.Redundant > len(f.Routes) {
			return fmt.Errorf("traffic: flow %d claims %d redundant routes but has %d", f.ID, f.Redundant, len(f.Routes))
		}
		for _, r := range f.Routes {
			if r.Hops() < 1 || r.Hops() > MaxRouteLen {
				return fmt.Errorf("traffic: flow %d route %v has invalid hop count", f.ID, r)
			}
			if f.WeightHops > 0 && r.Hops() > f.WeightHops {
				return fmt.Errorf("traffic: flow %d route %v longer than WeightHops %d", f.ID, r, f.WeightHops)
			}
			if r.Src() != f.Src || r.Dst() != f.Dst {
				return fmt.Errorf("traffic: flow %d route %v does not connect %d->%d", f.ID, r, f.Src, f.Dst)
			}
			for h := 0; h+1 < len(r); h++ {
				if !g.HasEdge(r[h], r[h+1]) {
					return fmt.Errorf("traffic: flow %d route %v: hop %d (%d->%d) is not a fabric link", f.ID, r, h, r[h], r[h+1])
				}
			}
			if !g.IsRoute(r) {
				return fmt.Errorf("traffic: flow %d route %v is not a path of the fabric", f.ID, r)
			}
		}
	}
	return nil
}

// ErrNoRoute is returned by generators when no feasible route of the
// requested length exists between a sampled source and destination.
var ErrNoRoute = errors.New("traffic: no feasible route")
