// Proactive multipath redundancy: provisioning critical flows with
// pairwise edge-disjoint alternate routes before any failure occurs, the
// complement of the online package's reactive epoch-boundary repair.
//
// The pipeline has three deterministic stages. MarkCritical selects which
// flows deserve spatial redundancy (the largest ones — losing them hurts
// most). Redundant populates each critical flow's Routes with up to k−1
// Bhandari edge-disjoint alternates of its primary route, bounded by a
// stretch factor. ExpandRedundant then turns each provisioned flow into k
// independent single-route copy flows plus a Redundancy group map, so the
// ordinary scheduler plans every copy like any other flow and the simulator
// (or the online fault loop) deduplicates delivery per group — a packet
// counts once, at its first copy's arrival.
package traffic

import (
	"sort"

	"octopus/internal/graph"
)

// MarkCritical marks the ⌈frac·len(Flows)⌉ largest flows Critical (ties by
// ascending flow ID) and clears the flag on the rest, returning how many are
// marked. frac <= 0 marks none; frac >= 1 marks all. The load's flow order
// is left untouched.
func MarkCritical(l *Load, frac float64) int {
	for i := range l.Flows {
		l.Flows[i].Critical = false
	}
	if frac <= 0 || len(l.Flows) == 0 {
		return 0
	}
	m := int(frac*float64(len(l.Flows)) + 0.999999)
	if frac >= 1 || m > len(l.Flows) {
		m = len(l.Flows)
	}
	idx := make([]int, len(l.Flows))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		fa, fb := &l.Flows[idx[a]], &l.Flows[idx[b]]
		if fa.Size != fb.Size {
			return fa.Size > fb.Size
		}
		return fa.ID < fb.ID
	})
	for _, i := range idx[:m] {
		l.Flows[i].Critical = true
	}
	return m
}

// Redundant returns a copy of the load in which every Critical flow's
// Routes are replaced by its primary route plus up to k−1 pairwise
// edge-disjoint alternates extracted from the fabric with the primary's
// edges removed (so every route in the set is disjoint from every other).
// Alternates are capped at maxStretch × the primary's hop count (and always
// at MaxRouteLen, and at WeightHops when the flow overrides its weight);
// maxStretch <= 0 leaves only the structural caps. Flow.Redundant records
// how many disjoint routes each flow ended up with. k <= 1 is the identity
// transform. The input load is never modified.
func Redundant(g *graph.Digraph, l *Load, k int, maxStretch float64) *Load {
	out := l.Clone()
	if k <= 1 {
		return out
	}
	for i := range out.Flows {
		f := &out.Flows[i]
		if !f.Critical || len(f.Routes) == 0 {
			continue
		}
		primary := f.Routes[0]
		maxHops := MaxRouteLen
		if maxStretch > 0 {
			s := int(maxStretch * float64(primary.Hops()))
			if s < primary.Hops() {
				s = primary.Hops()
			}
			if s < maxHops {
				maxHops = s
			}
		}
		if f.WeightHops > 0 && f.WeightHops < maxHops {
			maxHops = f.WeightHops
		}
		onPrimary := make(map[graph.Edge]bool, primary.Hops())
		for h := 0; h+1 < len(primary); h++ {
			onPrimary[graph.Edge{From: primary[h], To: primary[h+1]}] = true
		}
		residual := g.Subgraph(func(e graph.Edge) bool { return !onPrimary[e] })
		alts := graph.DisjointRoutes(residual, f.Src, f.Dst, k-1, maxHops)
		routes := make([]Route, 0, 1+len(alts))
		routes = append(routes, primary)
		for _, a := range alts {
			routes = append(routes, Route(a))
		}
		f.Routes = routes
		if len(routes) > 1 {
			f.Redundant = len(routes)
		}
	}
	return out
}

// Redundancy describes the copy groups of an expanded redundant load.
type Redundancy struct {
	// Group maps each copy flow's ID (the primary copy included) to the
	// group's primary flow ID. Flows absent from the map are unreplicated.
	Group map[int]int
}

// Empty reports whether no flow carries redundant copies.
func (r *Redundancy) Empty() bool { return r == nil || len(r.Group) == 0 }

// GroupOf returns the primary flow ID of id's redundancy group and whether
// id belongs to one.
func (r *Redundancy) GroupOf(id int) (int, bool) {
	if r == nil {
		return 0, false
	}
	p, ok := r.Group[id]
	return p, ok
}

// Duplicate reports whether id is a non-primary copy: a flow whose packets
// are redundant duplicates of its group primary's.
func (r *Redundancy) Duplicate(id int) bool {
	if r == nil {
		return false
	}
	p, ok := r.Group[id]
	return ok && p != id
}

// Members returns the group map inverted: primary flow ID → all member IDs
// in ascending order (primary first, since copies get larger IDs).
func (r *Redundancy) Members() map[int][]int {
	if r == nil {
		return nil
	}
	m := make(map[int][]int, len(r.Group))
	for id, p := range r.Group {
		m[p] = append(m[p], id)
	}
	for p := range m {
		sort.Ints(m[p])
	}
	return m
}

// ExpandRedundant splits every flow with Redundant > 1 into one
// single-route copy flow per provisioned route: the primary copy keeps the
// flow's ID and primary route, and each alternate becomes a copy flow with
// a fresh ID past the load's maximum (assigned in flow order, so the
// expansion is deterministic). The returned Redundancy maps every copy to
// its group. Loads without redundant flows expand to a plain clone and an
// Empty redundancy. The input load is never modified.
func ExpandRedundant(l *Load) (*Load, *Redundancy) {
	nextID := 0
	for i := range l.Flows {
		if l.Flows[i].ID >= nextID {
			nextID = l.Flows[i].ID + 1
		}
	}
	out := &Load{Flows: make([]Flow, 0, len(l.Flows))}
	red := &Redundancy{Group: make(map[int]int)}
	for i := range l.Flows {
		f := &l.Flows[i]
		if f.Redundant <= 1 || len(f.Routes) <= 1 {
			cf := *f
			cf.Routes = make([]Route, len(f.Routes))
			for j, r := range f.Routes {
				cf.Routes[j] = append(Route(nil), r...)
			}
			out.Flows = append(out.Flows, cf)
			continue
		}
		for j, r := range f.Routes {
			cf := *f
			cf.Routes = []Route{append(Route(nil), r...)}
			cf.Redundant = 0
			if j > 0 {
				cf.ID = nextID
				nextID++
			}
			red.Group[cf.ID] = f.ID
			out.Flows = append(out.Flows, cf)
		}
	}
	return out, red
}

// UniqueTotal returns the deduplicated packet count of an expanded load:
// duplicate copies do not add to the offered total.
func (r *Redundancy) UniqueTotal(l *Load) int {
	total := 0
	for i := range l.Flows {
		f := &l.Flows[i]
		if r.Duplicate(f.ID) {
			continue
		}
		total += f.Size
	}
	return total
}
