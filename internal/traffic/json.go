package traffic

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// WriteJSON serializes the load as indented JSON.
func (l *Load) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(l)
}

// ReadJSON parses a load from JSON. The result is structurally checked
// (every flow has at least one route with matching endpoints); fabric
// validation against a specific graph is the caller's job via Validate.
func ReadJSON(r io.Reader) (*Load, error) {
	var l Load
	dec := json.NewDecoder(r)
	if err := dec.Decode(&l); err != nil {
		return nil, fmt.Errorf("traffic: decoding load: %w", err)
	}
	for i := range l.Flows {
		f := &l.Flows[i]
		if len(f.Routes) == 0 {
			return nil, fmt.Errorf("traffic: flow %d has no routes", f.ID)
		}
		for _, rt := range f.Routes {
			if len(rt) < 2 {
				return nil, fmt.Errorf("traffic: flow %d has a degenerate route", f.ID)
			}
			if rt.Src() != f.Src || rt.Dst() != f.Dst {
				return nil, fmt.Errorf("traffic: flow %d route %v does not connect %d->%d", f.ID, rt, f.Src, f.Dst)
			}
		}
	}
	return &l, nil
}

// SaveFile writes the load to a JSON file.
func (l *Load) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := l.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a load from a JSON file.
func LoadFile(path string) (*Load, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadJSON(f)
}
