package traffic

import (
	"math/rand"
	"reflect"
	"testing"

	"octopus/internal/graph"
)

func TestPodSyntheticValidAndDeterministic(t *testing.T) {
	p := DefaultPodParams(4, 6, 64)
	s1, err := PodSynthetic(p, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Validate(p.Fabric()); err != nil {
		t.Fatalf("generated pod load invalid: %v", err)
	}
	wantFlows := (p.LargePerPod + p.SmallPerPod) * p.Pods
	if s1.Len() != wantFlows {
		t.Fatalf("Len = %d, want %d", s1.Len(), wantFlows)
	}
	wantPackets := int64((p.LargeTotal + p.SmallTotal) * p.Pods)
	if s1.TotalPackets() != wantPackets {
		t.Fatalf("TotalPackets = %d, want %d", s1.TotalPackets(), wantPackets)
	}
	s2, err := PodSynthetic(p, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s1.Materialize(nil), s2.Materialize(nil)) {
		t.Fatal("same seed produced different loads")
	}
	s3, err := PodSynthetic(p, rand.New(rand.NewSource(12)))
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(s1.Materialize(nil), s3.Materialize(nil)) {
		t.Fatal("different seeds produced identical loads")
	}
}

func TestPodSyntheticInterPodMix(t *testing.T) {
	p := DefaultPodParams(4, 8, 128)
	s, err := PodSynthetic(p, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	inter := 0
	for i := 0; i < s.Len(); i++ {
		if graph.PodOf(s.Src(i), p.PodSize) != graph.PodOf(s.Dst(i), p.PodSize) {
			inter++
		}
	}
	frac := float64(inter) / float64(s.Len())
	if frac < 0.15 || frac > 0.45 {
		t.Fatalf("inter-pod flow fraction %.2f far from InterFrac %.2f", frac, p.InterFrac)
	}
	// Inter-pod routes cross exactly one fabric link between pods.
	for i := 0; i < s.Len(); i++ {
		f := s.FlowAt(i)
		srcPod := graph.PodOf(f.Src, p.PodSize)
		dstPod := graph.PodOf(f.Dst, p.PodSize)
		crossings := 0
		for k := 0; k+1 < len(f.Routes[0]); k++ {
			if graph.PodOf(f.Routes[0][k], p.PodSize) != graph.PodOf(f.Routes[0][k+1], p.PodSize) {
				crossings++
			}
		}
		if srcPod == dstPod && crossings != 0 {
			t.Fatalf("intra-pod flow %d leaves its pod: %v", f.ID, f.Routes[0])
		}
		if srcPod != dstPod && crossings != 1 {
			t.Fatalf("inter-pod flow %d crosses %d pod boundaries: %v", f.ID, crossings, f.Routes[0])
		}
	}
}

func TestPodSyntheticLocalOnly(t *testing.T) {
	p := DefaultPodParams(3, 4, 32)
	p.InterFrac = 0
	s, err := PodSynthetic(p, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < s.Len(); i++ {
		if graph.PodOf(s.Src(i), p.PodSize) != graph.PodOf(s.Dst(i), p.PodSize) {
			t.Fatalf("flow %d crosses pods with InterFrac=0", i)
		}
	}
}

func TestPodParamsCheck(t *testing.T) {
	bad := []PodParams{
		{Pods: 0, PodSize: 4, LargePerPod: 1},
		{Pods: 2, PodSize: 1, LargePerPod: 1},
		{Pods: 2, PodSize: 4},
		{Pods: 2, PodSize: 4, LargePerPod: 1, InterFrac: 1.5},
		{Pods: 2, PodSize: 4, LargePerPod: 1, InterFrac: 0.5, InterLinks: 0},
	}
	for i, p := range bad {
		if err := PodSyntheticEmit(p, rand.New(rand.NewSource(1)), func(Flow) error { return nil }); err == nil {
			t.Errorf("case %d accepted: %+v", i, p)
		}
	}
}

func TestPodSyntheticEmitMatchesStore(t *testing.T) {
	p := DefaultPodParams(2, 4, 16)
	var streamed []Flow
	if err := PodSyntheticEmit(p, rand.New(rand.NewSource(9)), func(f Flow) error {
		streamed = append(streamed, f)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	s, err := PodSynthetic(p, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s.Materialize(nil).Flows, streamed) {
		t.Fatal("streaming and store generation disagree")
	}
}
