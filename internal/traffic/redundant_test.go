package traffic

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"octopus/internal/graph"
)

func TestMarkCritical(t *testing.T) {
	l := &Load{Flows: []Flow{
		{ID: 0, Size: 5, Src: 0, Dst: 1, Routes: []Route{{0, 1}}},
		{ID: 1, Size: 9, Src: 1, Dst: 2, Routes: []Route{{1, 2}}},
		{ID: 2, Size: 5, Src: 2, Dst: 3, Routes: []Route{{2, 3}}},
		{ID: 3, Size: 1, Src: 3, Dst: 0, Routes: []Route{{3, 0}}},
	}}
	if got := MarkCritical(l, 0); got != 0 {
		t.Fatalf("frac=0 marked %d", got)
	}
	if got := MarkCritical(l, 0.5); got != 2 {
		t.Fatalf("frac=0.5 marked %d, want 2", got)
	}
	// Largest first, ties by ascending ID: flow 1 (size 9), then flow 0
	// (size 5, beats flow 2 on ID).
	want := []bool{true, true, false, false}
	for i, f := range l.Flows {
		if f.Critical != want[i] {
			t.Fatalf("flow %d critical=%v, want %v", f.ID, f.Critical, want[i])
		}
	}
	if got := MarkCritical(l, 1); got != 4 {
		t.Fatalf("frac=1 marked %d", got)
	}
	// Re-marking with a smaller fraction clears stale flags.
	if got := MarkCritical(l, 0.25); got != 1 {
		t.Fatalf("frac=0.25 marked %d", got)
	}
	for i, f := range l.Flows {
		if f.Critical != (i == 1) {
			t.Fatalf("flow %d critical=%v after re-mark", f.ID, f.Critical)
		}
	}
}

func TestRedundantIdentityWhenKOne(t *testing.T) {
	g := graph.Complete(6)
	rng := rand.New(rand.NewSource(3))
	l, err := Synthetic(g, DefaultSyntheticParams(6, 100), rng)
	if err != nil {
		t.Fatal(err)
	}
	MarkCritical(l, 1)
	out := Redundant(g, l, 1, 2)
	if !reflect.DeepEqual(out, l) {
		t.Fatal("k=1 is not the identity transform")
	}
}

func TestRedundantProvisionsDisjointAlternates(t *testing.T) {
	g := graph.Complete(6)
	l := &Load{Flows: []Flow{
		{ID: 7, Size: 4, Src: 0, Dst: 5, Critical: true, Routes: []Route{{0, 5}}},
		{ID: 8, Size: 2, Src: 1, Dst: 2, Routes: []Route{{1, 2}}}, // not critical
	}}
	out := Redundant(g, l, 3, 2)
	if err := out.Validate(g); err != nil {
		t.Fatalf("transformed load invalid: %v", err)
	}
	f := &out.Flows[0]
	if f.Redundant != 3 || len(f.Routes) != 3 {
		t.Fatalf("critical flow got %d routes (Redundant=%d), want 3", len(f.Routes), f.Redundant)
	}
	if !f.Routes[0].Equal(Route{0, 5}) {
		t.Fatalf("primary route changed: %v", f.Routes[0])
	}
	seen := map[graph.Edge]bool{}
	for _, r := range f.Routes {
		if r.Hops() > 2 {
			t.Fatalf("route %v exceeds stretch cap 2×1", r)
		}
		for h := 0; h+1 < len(r); h++ {
			e := graph.Edge{From: r[h], To: r[h+1]}
			if seen[e] {
				t.Fatalf("edge %v reused across provisioned routes %v", e, f.Routes)
			}
			seen[e] = true
		}
	}
	if out.Flows[1].Redundant != 0 || len(out.Flows[1].Routes) != 1 {
		t.Fatal("non-critical flow was touched")
	}
	// The input load must be untouched.
	if len(l.Flows[0].Routes) != 1 {
		t.Fatal("input load mutated")
	}
}

func TestRedundantRespectsSparseFabric(t *testing.T) {
	// A directed ring has no alternate: the flow keeps only its primary.
	g := graph.ChordRing(6)
	l := &Load{Flows: []Flow{
		{ID: 0, Size: 1, Src: 0, Dst: 2, Critical: true, Routes: []Route{{0, 1, 2}}},
	}}
	out := Redundant(g, l, 3, 0)
	if len(out.Flows[0].Routes) != 1 || out.Flows[0].Redundant != 0 {
		t.Fatalf("ring flow got %v (Redundant=%d)", out.Flows[0].Routes, out.Flows[0].Redundant)
	}
}

func TestExpandRedundant(t *testing.T) {
	g := graph.Complete(6)
	l := &Load{Flows: []Flow{
		{ID: 0, Size: 4, Src: 0, Dst: 5, Critical: true, Routes: []Route{{0, 5}}},
		{ID: 1, Size: 2, Src: 1, Dst: 2, Routes: []Route{{1, 2}}},
	}}
	prov := Redundant(g, l, 3, 2)
	exp, red := ExpandRedundant(prov)
	if err := exp.Validate(g); err != nil {
		t.Fatalf("expanded load invalid: %v", err)
	}
	if len(exp.Flows) != 4 {
		t.Fatalf("expanded to %d flows, want 4", len(exp.Flows))
	}
	for i := range exp.Flows {
		if n := len(exp.Flows[i].Routes); n != 1 {
			t.Fatalf("expanded flow %d has %d routes", exp.Flows[i].ID, n)
		}
	}
	if red.Empty() {
		t.Fatal("redundancy map is empty")
	}
	members := red.Members()
	if !reflect.DeepEqual(members[0], []int{0, 2, 3}) {
		t.Fatalf("group members %v, want [0 2 3]", members[0])
	}
	if red.Duplicate(0) || !red.Duplicate(2) || !red.Duplicate(3) || red.Duplicate(1) {
		t.Fatalf("duplicate classification wrong: %+v", red.Group)
	}
	if got := red.UniqueTotal(exp); got != 6 {
		t.Fatalf("UniqueTotal = %d, want 6 (copies excluded)", got)
	}
	if exp.TotalPackets() != 14 {
		t.Fatalf("raw total %d, want 14 (4×3 copies + 2)", exp.TotalPackets())
	}

	// Without redundant flows the expansion is a plain deep clone.
	plain, red2 := ExpandRedundant(l)
	if !red2.Empty() {
		t.Fatal("plain load produced groups")
	}
	if !reflect.DeepEqual(plain, l) {
		t.Fatal("plain expansion is not the identity")
	}
}

func TestRedundantFieldsRoundTripJSON(t *testing.T) {
	l := &Load{Flows: []Flow{
		{ID: 3, Size: 2, Src: 0, Dst: 2, Critical: true, Redundant: 2,
			Routes: []Route{{0, 2}, {0, 1, 2}}},
	}}
	var buf bytes.Buffer
	if err := l.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, l) {
		t.Fatalf("round trip changed the load: %+v vs %+v", got, l)
	}
}

func TestValidateNamesOffendingHop(t *testing.T) {
	g := graph.ChordRing(5) // ring only: no edge 0->2
	l := &Load{Flows: []Flow{
		{ID: 9, Size: 1, Src: 0, Dst: 3, Routes: []Route{{0, 2, 3}}},
	}}
	err := l.Validate(g)
	if err == nil {
		t.Fatal("validation accepted a route off the fabric")
	}
	want := "traffic: flow 9 route [0 2 3]: hop 0 (0->2) is not a fabric link"
	if err.Error() != want {
		t.Fatalf("error %q, want %q", err, want)
	}
}
