package traffic

import (
	"math/rand"
	"reflect"
	"testing"

	"octopus/internal/graph"
)

func storeFixtureLoad() *Load {
	return &Load{Flows: []Flow{
		{ID: 0, Size: 5, Src: 0, Dst: 2, Routes: []Route{{0, 1, 2}, {0, 3, 2}}, WeightHops: 2, Redundant: 1},
		{ID: 1, Size: 1, Src: 3, Dst: 1, Routes: []Route{{3, 1}}, Critical: true},
		{ID: 2, Size: 9, Src: 2, Dst: 0, Routes: []Route{{2, 0}}},
	}}
}

func TestStoreRoundTrip(t *testing.T) {
	l := storeFixtureLoad()
	s, err := FromLoad(l)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 || s.NumRoutes() != 4 || s.NumRouteNodes() != 10 {
		t.Fatalf("dims = %d flows, %d routes, %d nodes", s.Len(), s.NumRoutes(), s.NumRouteNodes())
	}
	if s.TotalPackets() != 15 {
		t.Fatalf("TotalPackets = %d, want 15", s.TotalPackets())
	}
	if s.MaxNode() != 3 {
		t.Fatalf("MaxNode = %d, want 3", s.MaxNode())
	}
	for i := range l.Flows {
		if got := s.FlowAt(i); !reflect.DeepEqual(got, l.Flows[i]) {
			t.Fatalf("FlowAt(%d) = %+v, want %+v", i, got, l.Flows[i])
		}
		if s.Src(i) != l.Flows[i].Src || s.Dst(i) != l.Flows[i].Dst || s.Size(i) != l.Flows[i].Size {
			t.Fatalf("column accessors disagree for flow %d", i)
		}
	}
	if got := s.Materialize(nil); !reflect.DeepEqual(got, l) {
		t.Fatalf("Materialize(nil) = %+v, want %+v", got, l)
	}
}

func TestStoreMaterializeSubset(t *testing.T) {
	s, err := FromLoad(storeFixtureLoad())
	if err != nil {
		t.Fatal(err)
	}
	got := s.Materialize([]int{2, 0})
	want := storeFixtureLoad()
	if len(got.Flows) != 2 ||
		!reflect.DeepEqual(got.Flows[0], want.Flows[2]) ||
		!reflect.DeepEqual(got.Flows[1], want.Flows[0]) {
		t.Fatalf("subset materialization = %+v", got.Flows)
	}
	// Empty selection is a valid (empty) load.
	if empty := s.Materialize([]int{}); len(empty.Flows) != 0 {
		t.Fatalf("empty selection produced %d flows", len(empty.Flows))
	}
}

// Materialized loads must stay intact if the store keeps growing: the
// capacity-capped subslices may not alias appends.
func TestStoreMaterializeNoAliasing(t *testing.T) {
	s := NewStore(0, 0)
	f0 := Flow{ID: 0, Size: 1, Src: 0, Dst: 1, Routes: []Route{{0, 1}}}
	if err := s.Append(&f0); err != nil {
		t.Fatal(err)
	}
	snap := s.Materialize(nil)
	for i := 1; i < 100; i++ {
		f := Flow{ID: i, Size: 1, Src: 0, Dst: 1, Routes: []Route{{0, 1}}}
		if err := s.Append(&f); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(snap.Flows[0], f0) || len(snap.Flows) != 1 {
		t.Fatalf("materialized snapshot mutated by later appends: %+v", snap.Flows)
	}
}

func TestStoreAppendRejects(t *testing.T) {
	cases := []Flow{
		{ID: 0, Size: 1, Src: 0, Dst: 1},                                                                 // no routes
		{ID: 0, Size: 1, Src: 0, Dst: 0, Routes: []Route{{0}}},                                           // degenerate route
		{ID: 0, Size: 1, Src: 0, Dst: 1, Routes: []Route{{0, 2}}},                                        // route misses endpoints
		{ID: -1, Size: 1, Src: 0, Dst: 1, Routes: []Route{{0, 1}}},                                       // negative id
		{ID: 0, Size: 1, Src: 0, Dst: 1, Routes: []Route{{0, 1}}, WeightHops: 99},                        // bad weight hops
		{ID: 0, Size: 1, Src: 0, Dst: 1, Routes: []Route{{0, 1}}, Redundant: 2},                          // redundant > routes
		{ID: 0, Size: 1, Src: 0, Dst: 1, Routes: []Route{{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 1}}}, // too long
	}
	for i, f := range cases {
		if err := NewStore(0, 0).Append(&f); err == nil {
			t.Errorf("case %d accepted: %+v", i, f)
		}
	}
}

func TestStoreValidate(t *testing.T) {
	g := graph.Complete(4)
	s, err := FromLoad(storeFixtureLoad())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(g); err != nil {
		t.Fatalf("valid store rejected: %v", err)
	}
	// Duplicate ID.
	dup := Flow{ID: 0, Size: 1, Src: 0, Dst: 1, Routes: []Route{{0, 1}}}
	if err := s.Append(&dup); err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(g); err == nil {
		t.Fatal("duplicate flow ID accepted")
	}
	// Route off the fabric.
	s2 := NewStore(0, 0)
	far := Flow{ID: 0, Size: 1, Src: 0, Dst: 9, Routes: []Route{{0, 9}}}
	if err := s2.Append(&far); err != nil {
		t.Fatal(err)
	}
	if err := s2.Validate(g); err == nil {
		t.Fatal("off-fabric route accepted")
	}
}

func TestStoreRouteNodesAndPrimaryHops(t *testing.T) {
	s, err := FromLoad(storeFixtureLoad())
	if err != nil {
		t.Fatal(err)
	}
	var got []int
	s.RouteNodes(0, func(v int) { got = append(got, v) })
	if want := []int{0, 1, 2, 0, 3, 2}; !reflect.DeepEqual(got, want) {
		t.Fatalf("RouteNodes(0) visited %v, want %v", got, want)
	}
	if s.PrimaryHops(0) != 2 || s.PrimaryHops(1) != 1 {
		t.Fatalf("PrimaryHops = %d, %d", s.PrimaryHops(0), s.PrimaryHops(1))
	}
}

func TestStoreAgainstSynthetic(t *testing.T) {
	g := graph.Complete(8)
	l, err := Synthetic(g, DefaultSyntheticParams(8, 64), rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	s, err := FromLoad(l)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(g); err != nil {
		t.Fatal(err)
	}
	if got := s.Materialize(nil); !reflect.DeepEqual(got, l) {
		t.Fatal("synthetic load does not round-trip through the store")
	}
}
