package traffic

import (
	"fmt"
	"math"

	"octopus/internal/graph"
)

// Store is a columnar (structure-of-arrays) flow store: every flow field
// lives in a parallel slice and all route node sequences share one arena,
// so a million-flow load costs a handful of large allocations instead of
// three small ones per flow. It is the ingest representation for streamed
// traces and the source the pod-sharded scheduler materializes per-shard
// loads from.
//
// Layout: flow i has identity ids[i], size sizes[i], endpoints
// srcs[i]->dsts[i], and routes routeStart[i]..routeStart[i+1] (exclusive)
// in the route table; route r spans nodes[routeOff[r]:routeOff[r+1]].
// Node ids are int32 (a fabric with 2^31 nodes is far past any other
// limit in this repository).
type Store struct {
	ids        []int32
	sizes      []int32
	srcs       []int32
	dsts       []int32
	weightHops []int8
	critical   []bool
	redundant  []int8

	routeStart []int32 // len = Len()+1, indexes routeOff
	routeOff   []int32 // len = routes+1, indexes nodes
	nodes      []int32
}

// NewStore returns an empty store with capacity hints for flows and total
// route nodes (0 hints are fine).
func NewStore(flowHint, nodeHint int) *Store {
	s := &Store{
		ids:        make([]int32, 0, flowHint),
		sizes:      make([]int32, 0, flowHint),
		srcs:       make([]int32, 0, flowHint),
		dsts:       make([]int32, 0, flowHint),
		weightHops: make([]int8, 0, flowHint),
		critical:   make([]bool, 0, flowHint),
		redundant:  make([]int8, 0, flowHint),
		routeStart: make([]int32, 1, flowHint+1),
		routeOff:   make([]int32, 1, flowHint+1),
		nodes:      make([]int32, 0, nodeHint),
	}
	return s
}

// Len returns the number of flows in the store.
func (s *Store) Len() int { return len(s.ids) }

// NumRoutes returns the total number of routes across all flows.
func (s *Store) NumRoutes() int { return len(s.routeOff) - 1 }

// NumRouteNodes returns the total route node count (the arena length).
func (s *Store) NumRouteNodes() int { return len(s.nodes) }

// TotalPackets returns the total packet count across all flows.
func (s *Store) TotalPackets() int64 {
	var total int64
	for _, sz := range s.sizes {
		total += int64(sz)
	}
	return total
}

// Bytes returns the resident size of the store's columns: the capacity of
// every backing array, in bytes. This is the store's whole variable-size
// footprint — flows and routes add columns here, nothing else.
func (s *Store) Bytes() uint64 {
	return 4*uint64(cap(s.ids)+cap(s.sizes)+cap(s.srcs)+cap(s.dsts)) +
		uint64(cap(s.weightHops)+cap(s.critical)+cap(s.redundant)) +
		4*uint64(cap(s.routeStart)+cap(s.routeOff)+cap(s.nodes))
}

// MaxNode returns the largest node id referenced by any route or endpoint,
// or -1 for an empty store.
func (s *Store) MaxNode() int {
	maxNode := int32(-1)
	for _, v := range s.nodes {
		if v > maxNode {
			maxNode = v
		}
	}
	for i := range s.srcs {
		if s.srcs[i] > maxNode {
			maxNode = s.srcs[i]
		}
		if s.dsts[i] > maxNode {
			maxNode = s.dsts[i]
		}
	}
	return int(maxNode)
}

// Append adds one flow to the store. It enforces the same structural
// invariants as ReadJSON: at least one route, no degenerate routes, every
// route connecting the flow's endpoints, and fields within the int32/int8
// column ranges.
func (s *Store) Append(f *Flow) error {
	if len(f.Routes) == 0 {
		return fmt.Errorf("traffic: flow %d has no routes", f.ID)
	}
	if f.ID < 0 || int64(f.ID) > math.MaxInt32 {
		return fmt.Errorf("traffic: flow id %d out of store range", f.ID)
	}
	if f.Size < 0 || int64(f.Size) > math.MaxInt32 {
		return fmt.Errorf("traffic: flow %d size %d out of store range", f.ID, f.Size)
	}
	if f.WeightHops < 0 || f.WeightHops > MaxRouteLen {
		return fmt.Errorf("traffic: flow %d has invalid WeightHops %d", f.ID, f.WeightHops)
	}
	if f.Redundant < 0 || f.Redundant > len(f.Routes) {
		return fmt.Errorf("traffic: flow %d claims %d redundant routes but has %d", f.ID, f.Redundant, len(f.Routes))
	}
	for _, r := range f.Routes {
		if len(r) < 2 {
			return fmt.Errorf("traffic: flow %d has a degenerate route", f.ID)
		}
		if len(r) > MaxRouteLen+1 {
			return fmt.Errorf("traffic: flow %d route exceeds %d hops", f.ID, MaxRouteLen)
		}
		if r.Src() != f.Src || r.Dst() != f.Dst {
			return fmt.Errorf("traffic: flow %d route %v does not connect %d->%d", f.ID, r, f.Src, f.Dst)
		}
		for _, v := range r {
			if v < 0 || int64(v) > math.MaxInt32 {
				return fmt.Errorf("traffic: flow %d route node %d out of store range", f.ID, v)
			}
		}
	}
	s.ids = append(s.ids, int32(f.ID))
	s.sizes = append(s.sizes, int32(f.Size))
	s.srcs = append(s.srcs, int32(f.Src))
	s.dsts = append(s.dsts, int32(f.Dst))
	s.weightHops = append(s.weightHops, int8(f.WeightHops))
	s.critical = append(s.critical, f.Critical)
	s.redundant = append(s.redundant, int8(f.Redundant))
	for _, r := range f.Routes {
		for _, v := range r {
			s.nodes = append(s.nodes, int32(v))
		}
		s.routeOff = append(s.routeOff, int32(len(s.nodes)))
	}
	s.routeStart = append(s.routeStart, int32(len(s.routeOff)-1))
	return nil
}

// FromLoad converts a pointer-rich load into a columnar store.
func FromLoad(l *Load) (*Store, error) {
	nodeCount := 0
	for i := range l.Flows {
		for _, r := range l.Flows[i].Routes {
			nodeCount += len(r)
		}
	}
	s := NewStore(len(l.Flows), nodeCount)
	for i := range l.Flows {
		if err := s.Append(&l.Flows[i]); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// FlowAt materializes flow i as a standalone Flow (routes copied out of
// the arena). For bulk access prefer Materialize, which shares backing
// arrays across the whole result.
func (s *Store) FlowAt(i int) Flow {
	f := Flow{
		ID:         int(s.ids[i]),
		Size:       int(s.sizes[i]),
		Src:        int(s.srcs[i]),
		Dst:        int(s.dsts[i]),
		WeightHops: int(s.weightHops[i]),
		Critical:   s.critical[i],
		Redundant:  int(s.redundant[i]),
	}
	lo, hi := s.routeStart[i], s.routeStart[i+1]
	f.Routes = make([]Route, 0, hi-lo)
	for r := lo; r < hi; r++ {
		a, b := s.routeOff[r], s.routeOff[r+1]
		route := make(Route, b-a)
		for k := a; k < b; k++ {
			route[k-a] = int(s.nodes[k])
		}
		f.Routes = append(f.Routes, route)
	}
	return f
}

// Src, Dst and Size expose the endpoint/size columns of flow i without
// materializing it; the sharded scheduler partitions flows by pod this
// way.
func (s *Store) Src(i int) int  { return int(s.srcs[i]) }
func (s *Store) Dst(i int) int  { return int(s.dsts[i]) }
func (s *Store) Size(i int) int { return int(s.sizes[i]) }

// RouteNodes calls fn for every node of every route of flow i, in route
// order, without materializing anything.
func (s *Store) RouteNodes(i int, fn func(node int)) {
	lo, hi := s.routeStart[i], s.routeStart[i+1]
	for k := s.routeOff[lo]; k < s.routeOff[hi]; k++ {
		fn(int(s.nodes[k]))
	}
}

// PrimaryHops returns the hop count of flow i's first route.
func (s *Store) PrimaryHops(i int) int {
	lo := s.routeStart[i]
	return int(s.routeOff[lo+1]-s.routeOff[lo]) - 1
}

// Materialize builds a Load holding the selected flows (all flows when
// idx is nil, in store order). The result shares three backing arrays —
// one []Flow, one []Route table, and one []int node arena — instead of
// allocating per flow, which is what keeps million-flow shard loads off
// the allocator's hot path. The returned load is independent of later
// store appends but MUST NOT have its route contents mutated in place
// (scheduler contracts already forbid that: algorithms never mutate their
// input load).
func (s *Store) Materialize(idx []int) *Load {
	n := len(idx)
	if idx == nil {
		n = s.Len()
	}
	flowAt := func(k int) int {
		if idx == nil {
			return k
		}
		return idx[k]
	}
	routeCount, nodeCount := 0, 0
	for k := 0; k < n; k++ {
		i := flowAt(k)
		lo, hi := s.routeStart[i], s.routeStart[i+1]
		routeCount += int(hi - lo)
		nodeCount += int(s.routeOff[hi] - s.routeOff[lo])
	}
	flows := make([]Flow, n)
	routeTab := make([]Route, 0, routeCount)
	arena := make([]int, 0, nodeCount)
	for k := 0; k < n; k++ {
		i := flowAt(k)
		lo, hi := s.routeStart[i], s.routeStart[i+1]
		tabStart := len(routeTab)
		for r := lo; r < hi; r++ {
			a, b := s.routeOff[r], s.routeOff[r+1]
			nodeStart := len(arena)
			for p := a; p < b; p++ {
				arena = append(arena, int(s.nodes[p]))
			}
			routeTab = append(routeTab, Route(arena[nodeStart:len(arena):len(arena)]))
		}
		flows[k] = Flow{
			ID:         int(s.ids[i]),
			Size:       int(s.sizes[i]),
			Src:        int(s.srcs[i]),
			Dst:        int(s.dsts[i]),
			Routes:     routeTab[tabStart:len(routeTab):len(routeTab)],
			WeightHops: int(s.weightHops[i]),
			Critical:   s.critical[i],
			Redundant:  int(s.redundant[i]),
		}
	}
	return &Load{Flows: flows}
}

// Validate checks every stored flow against fabric g, exactly like
// Load.Validate but without materializing a Load.
func (s *Store) Validate(g *graph.Digraph) error {
	// The structural per-flow checks ran in Append; here only fabric
	// membership and route-path validity remain, plus ID uniqueness.
	seen := make(map[int32]bool, s.Len())
	var route []int
	for i := 0; i < s.Len(); i++ {
		if seen[s.ids[i]] {
			return fmt.Errorf("traffic: duplicate flow ID %d", s.ids[i])
		}
		seen[s.ids[i]] = true
		if s.sizes[i] <= 0 {
			return fmt.Errorf("traffic: flow %d has non-positive size %d", s.ids[i], s.sizes[i])
		}
		lo, hi := s.routeStart[i], s.routeStart[i+1]
		for r := lo; r < hi; r++ {
			a, b := s.routeOff[r], s.routeOff[r+1]
			if int(s.weightHops[i]) > 0 && int(b-a)-1 > int(s.weightHops[i]) {
				return fmt.Errorf("traffic: flow %d route longer than WeightHops %d", s.ids[i], s.weightHops[i])
			}
			route = route[:0]
			for k := a; k < b; k++ {
				route = append(route, int(s.nodes[k]))
			}
			if !g.IsRoute(route) {
				return fmt.Errorf("traffic: flow %d route %v is not a path of the fabric", s.ids[i], route)
			}
		}
	}
	return nil
}
