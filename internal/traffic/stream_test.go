package traffic

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"
)

func writeStream(t *testing.T, format StreamFormat, flows []Flow) []byte {
	t.Helper()
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf, format)
	for i := range flows {
		if err := sw.Write(&flows[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestStreamRoundTrip(t *testing.T) {
	want := storeFixtureLoad().Flows
	for _, format := range []StreamFormat{FormatJSONL, FormatBinary} {
		data := writeStream(t, format, want)
		sr := NewStreamReader(bytes.NewReader(data))
		var got []Flow
		for {
			f, err := sr.Next()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				t.Fatalf("format %d: %v", format, err)
			}
			got = append(got, f)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("format %d: round-trip mismatch\ngot  %+v\nwant %+v", format, got, want)
		}
	}
}

func TestStreamEmpty(t *testing.T) {
	for _, format := range []StreamFormat{FormatJSONL, FormatBinary} {
		data := writeStream(t, format, nil)
		s, err := ReadStore(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("format %d: %v", format, err)
		}
		if s.Len() != 0 {
			t.Fatalf("format %d: empty stream decoded %d flows", format, s.Len())
		}
	}
}

func TestStreamBinaryTruncation(t *testing.T) {
	data := writeStream(t, FormatBinary, storeFixtureLoad().Flows)
	// Drop the end record: the reader must report truncation, not EOF.
	if _, err := ReadStore(bytes.NewReader(data[:len(data)-1])); err == nil {
		t.Fatal("truncated stream (missing end record) accepted")
	}
	// Cut mid-record.
	if _, err := ReadStore(bytes.NewReader(data[:len(data)/2])); err == nil {
		t.Fatal("mid-record truncation accepted")
	}
}

func TestStreamBinaryHostile(t *testing.T) {
	cases := map[string][]byte{
		"unknown record": append(append([]byte{}, binaryMagic...), 0x7f),
		"huge route count": func() []byte {
			b := append([]byte{}, binaryMagic...)
			b = append(b, recFlow)
			// id,size,src,dst,weightHops,flags,redundant small...
			b = append(b, 0, 1, 0, 1, 0, 0, 0)
			b = append(b, 0xff, 0xff, 0xff, 0xff, 0x7f) // nroutes huge
			return b
		}(),
		"huge route length": func() []byte {
			b := append([]byte{}, binaryMagic...)
			b = append(b, recFlow)
			b = append(b, 0, 1, 0, 1, 0, 0, 0, 1)
			b = append(b, 0xff, 0xff, 0x7f) // route length huge
			return b
		}(),
	}
	for name, data := range cases {
		if _, err := ReadStore(bytes.NewReader(data)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestStreamJSONLRejects(t *testing.T) {
	header := `{"format":"mhs-flows/v1"}` + "\n"
	cases := map[string]string{
		"unknown field":  header + `{"id":0,"size":1,"src":0,"dst":1,"routes":[[0,1]],"bogus":3}` + "\n",
		"no routes":      header + `{"id":0,"size":1,"src":0,"dst":1}` + "\n",
		"degenerate":     header + `{"id":0,"size":1,"src":0,"dst":0,"routes":[[0]]}` + "\n",
		"route mismatch": header + `{"id":0,"size":1,"src":0,"dst":1,"routes":[[0,2]]}` + "\n",
		"trailing data":  header + `{"id":0,"size":1,"src":0,"dst":1,"routes":[[0,1]]} {"x":1}` + "\n",
		"not json":       header + "garbage\n",
	}
	for name, data := range cases {
		if _, err := ReadStore(strings.NewReader(data)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	// Blank lines between records are tolerated.
	ok := header + "\n" + `{"id":0,"size":1,"src":0,"dst":1,"routes":[[0,1]]}` + "\n\n"
	s, err := ReadStore(strings.NewReader(ok))
	if err != nil {
		t.Fatalf("blank-line stream: %v", err)
	}
	if s.Len() != 1 {
		t.Fatalf("blank-line stream: %d flows", s.Len())
	}
}

func TestStreamHeaderSniff(t *testing.T) {
	for _, bad := range []string{"", "{}\n", `{"format":"mhs-flows/v999"}` + "\n", "MHSB2\nxx"} {
		_, err := NewStreamReader(strings.NewReader(bad)).Next()
		if !errors.Is(err, ErrNotStream) {
			t.Errorf("input %q: err = %v, want ErrNotStream", bad, err)
		}
	}
}

func TestReadAnyAllFormats(t *testing.T) {
	want := storeFixtureLoad()

	// Classic whole-document JSON.
	doc, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	for name, data := range map[string][]byte{
		"document": doc,
		"jsonl":    writeStream(t, FormatJSONL, want.Flows),
		"binary":   writeStream(t, FormatBinary, want.Flows),
	} {
		got, err := ReadAny(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: load mismatch", name)
		}
	}
}

func TestStreamWriterCloseIdempotent(t *testing.T) {
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf, FormatBinary)
	f := storeFixtureLoad().Flows[0]
	if err := sw.Write(&f); err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	n := buf.Len()
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != n {
		t.Fatal("second Close wrote more bytes")
	}
	if err := sw.Write(&f); err == nil {
		t.Fatal("write after Close accepted")
	}
}
