package traffic

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
)

// Streaming trace formats: loads far larger than RAM are written one flow
// record at a time by the generator and consumed incrementally by the
// schedulers' ingest path, never holding the pointer-rich document form in
// memory.
//
// Two encodings share one logical schema:
//
//   - JSONL: a header line {"format":"mhs-flows/v1"} followed by one JSON
//     flow object per line (the same field names as the classic Load
//     document). Greppable, diffable, compresses well.
//   - Binary: the magic "MHSB1\n" followed by length-prefixed uvarint flow
//     records — about 10x smaller and 10x faster to decode than JSONL.
//
// StreamReader auto-detects the encoding, and LoadAnyFile additionally
// falls back to the classic whole-document JSON load format, so every
// consumer (mhsim -load, mhsbench, mhsgen -stats) accepts all three
// transparently.

// StreamFormat selects a streaming trace encoding.
type StreamFormat int

const (
	// FormatJSONL writes the header line and one JSON flow per line.
	FormatJSONL StreamFormat = iota
	// FormatBinary writes the compact uvarint encoding.
	FormatBinary
)

// streamHeader is the first JSONL line identifying the stream format.
type streamHeader struct {
	Format string `json:"format"`
}

// jsonlFormatID identifies the JSONL flow-stream schema; binaryMagic the
// binary one. Bump only on incompatible layout changes.
const jsonlFormatID = "mhs-flows/v1"

var binaryMagic = []byte("MHSB1\n")

// Binary record framing: each flow record begins with recFlow; recEnd
// terminates the stream so truncation is detectable.
const (
	recFlow = 0x01
	recEnd  = 0x00
)

// Hard decode limits. Streams are hostile input (fuzzed); every count is
// bounded before any allocation sized from it.
const (
	maxStreamRoutes = 1 << 16 // routes per flow
	maxStreamNodes  = MaxRouteLen + 1
)

// StreamWriter emits a flow stream in the chosen format. Close (or Flush)
// must be called to terminate the stream; the binary format writes an
// explicit end record so consumers can tell truncation from completion.
type StreamWriter struct {
	w       *bufio.Writer
	format  StreamFormat
	wrote   bool
	closed  bool
	scratch []byte
	err     error
}

// NewStreamWriter returns a writer emitting the stream header lazily on
// the first Write (or on Close, for an empty stream).
func NewStreamWriter(w io.Writer, format StreamFormat) *StreamWriter {
	return &StreamWriter{w: bufio.NewWriterSize(w, 1<<16), format: format}
}

func (sw *StreamWriter) header() {
	if sw.wrote || sw.err != nil {
		return
	}
	sw.wrote = true
	if sw.format == FormatBinary {
		_, sw.err = sw.w.Write(binaryMagic)
		return
	}
	h, _ := json.Marshal(streamHeader{Format: jsonlFormatID})
	if _, sw.err = sw.w.Write(h); sw.err == nil {
		sw.err = sw.w.WriteByte('\n')
	}
}

// Write appends one flow record. Flows outside the stream schema (see
// checkStreamFlow) are rejected without corrupting the stream.
func (sw *StreamWriter) Write(f *Flow) error {
	if sw.closed {
		return errors.New("traffic: write to closed stream")
	}
	if err := checkStreamFlow(f); err != nil {
		return err
	}
	sw.header()
	if sw.err != nil {
		return sw.err
	}
	if sw.format == FormatBinary {
		sw.scratch = appendBinaryFlow(sw.scratch[:0], f)
		_, sw.err = sw.w.Write(sw.scratch)
		return sw.err
	}
	line, err := json.Marshal(f)
	if err != nil {
		sw.err = err
		return err
	}
	if _, sw.err = sw.w.Write(line); sw.err == nil {
		sw.err = sw.w.WriteByte('\n')
	}
	return sw.err
}

// Close terminates and flushes the stream. It is idempotent.
func (sw *StreamWriter) Close() error {
	if sw.closed {
		return sw.err
	}
	sw.closed = true
	sw.header()
	if sw.err != nil {
		return sw.err
	}
	if sw.format == FormatBinary {
		if sw.err = sw.w.WriteByte(recEnd); sw.err != nil {
			return sw.err
		}
	}
	sw.err = sw.w.Flush()
	return sw.err
}

// appendBinaryFlow encodes one flow record onto buf.
func appendBinaryFlow(buf []byte, f *Flow) []byte {
	buf = append(buf, recFlow)
	buf = binary.AppendUvarint(buf, uint64(f.ID))
	buf = binary.AppendUvarint(buf, uint64(f.Size))
	buf = binary.AppendUvarint(buf, uint64(f.Src))
	buf = binary.AppendUvarint(buf, uint64(f.Dst))
	buf = binary.AppendUvarint(buf, uint64(f.WeightHops))
	flags := uint64(0)
	if f.Critical {
		flags = 1
	}
	buf = binary.AppendUvarint(buf, flags)
	buf = binary.AppendUvarint(buf, uint64(f.Redundant))
	buf = binary.AppendUvarint(buf, uint64(len(f.Routes)))
	for _, r := range f.Routes {
		buf = binary.AppendUvarint(buf, uint64(len(r)))
		for _, v := range r {
			buf = binary.AppendUvarint(buf, uint64(v))
		}
	}
	return buf
}

// StreamReader decodes a flow stream, auto-detecting the encoding from
// the header.
type StreamReader struct {
	br     *bufio.Reader
	binary bool
	inited bool
	done   bool
}

// NewStreamReader returns a reader over r. The format is sniffed on the
// first Next call.
func NewStreamReader(r io.Reader) *StreamReader {
	return &StreamReader{br: bufio.NewReaderSize(r, 1<<16)}
}

// ErrNotStream reports that the input does not begin with a recognized
// stream header (it may be a classic whole-document JSON load).
var ErrNotStream = errors.New("traffic: not a flow stream")

// init sniffs the header.
func (sr *StreamReader) init() error {
	if sr.inited {
		return nil
	}
	sr.inited = true
	peek, err := sr.br.Peek(len(binaryMagic))
	if err == nil && bytes.Equal(peek, binaryMagic) {
		sr.br.Discard(len(binaryMagic))
		sr.binary = true
		return nil
	}
	line, err := sr.br.ReadBytes('\n')
	if err != nil && len(line) == 0 {
		return fmt.Errorf("%w: empty input", ErrNotStream)
	}
	var h streamHeader
	if jerr := json.Unmarshal(line, &h); jerr != nil || h.Format != jsonlFormatID {
		return fmt.Errorf("%w: unrecognized header", ErrNotStream)
	}
	return nil
}

// Next decodes the next flow record. It returns io.EOF after the last
// flow; any other error means the stream is malformed or truncated. The
// returned flow passes the same structural checks as ReadJSON.
func (sr *StreamReader) Next() (Flow, error) {
	if err := sr.init(); err != nil {
		return Flow{}, err
	}
	if sr.done {
		return Flow{}, io.EOF
	}
	var f Flow
	var err error
	if sr.binary {
		f, err = sr.nextBinary()
	} else {
		f, err = sr.nextJSONL()
	}
	if err != nil {
		sr.done = true
		return Flow{}, err
	}
	if err := checkStreamFlow(&f); err != nil {
		sr.done = true
		return Flow{}, err
	}
	return f, nil
}

func (sr *StreamReader) nextJSONL() (Flow, error) {
	for {
		line, err := sr.br.ReadBytes('\n')
		trimmed := bytes.TrimSpace(line)
		if len(trimmed) == 0 {
			if err != nil {
				return Flow{}, io.EOF
			}
			continue // blank line between records
		}
		if err != nil && !errors.Is(err, io.EOF) {
			return Flow{}, err
		}
		var f Flow
		dec := json.NewDecoder(bytes.NewReader(trimmed))
		dec.DisallowUnknownFields()
		if jerr := dec.Decode(&f); jerr != nil {
			return Flow{}, fmt.Errorf("traffic: flow stream: %v", jerr)
		}
		var extra json.RawMessage
		if dec.Decode(&extra) != io.EOF {
			return Flow{}, errors.New("traffic: flow stream: trailing data on record line")
		}
		return f, nil
	}
}

func (sr *StreamReader) nextBinary() (Flow, error) {
	kind, err := sr.br.ReadByte()
	if err != nil {
		return Flow{}, errors.New("traffic: flow stream truncated (missing end record)")
	}
	switch kind {
	case recEnd:
		return Flow{}, io.EOF
	case recFlow:
	default:
		return Flow{}, fmt.Errorf("traffic: flow stream: unknown record type 0x%02x", kind)
	}
	u := func(dst *int, max uint64, what string) error {
		if err != nil {
			return err
		}
		v, rerr := binary.ReadUvarint(sr.br)
		if rerr != nil {
			// Deliberately not io.EOF: running out of bytes mid-record is
			// truncation, which must surface as corruption, not clean end.
			err = fmt.Errorf("traffic: flow stream truncated reading %s", what)
			return err
		}
		if v > max {
			err = fmt.Errorf("traffic: flow stream: %s %d out of range", what, v)
			return err
		}
		*dst = int(v)
		return nil
	}
	var f Flow
	var flags, nroutes int
	if u(&f.ID, 1<<31-1, "id") != nil ||
		u(&f.Size, 1<<31-1, "size") != nil ||
		u(&f.Src, 1<<31-1, "src") != nil ||
		u(&f.Dst, 1<<31-1, "dst") != nil ||
		u(&f.WeightHops, MaxRouteLen, "weight_hops") != nil ||
		u(&flags, 1, "flags") != nil ||
		u(&f.Redundant, maxStreamRoutes, "redundant") != nil ||
		u(&nroutes, maxStreamRoutes, "route count") != nil {
		return Flow{}, err
	}
	f.Critical = flags == 1
	f.Routes = make([]Route, 0, min(nroutes, 16))
	for i := 0; i < nroutes; i++ {
		var nn int
		if u(&nn, maxStreamNodes, "route length") != nil {
			return Flow{}, err
		}
		r := make(Route, nn)
		for j := 0; j < nn; j++ {
			if u(&r[j], 1<<31-1, "route node") != nil {
				return Flow{}, err
			}
		}
		f.Routes = append(f.Routes, r)
	}
	return f, nil
}

// checkStreamFlow applies the stream schema invariants to one record: the
// ReadJSON structural checks plus the numeric ranges the binary encoding
// can represent, so both encodings accept exactly the same set of flows
// and every accepted flow re-encodes losslessly. Enforced on both decode
// (Next) and encode (Write).
func checkStreamFlow(f *Flow) error {
	if f.ID < 0 || int64(f.ID) > math.MaxInt32 {
		return fmt.Errorf("traffic: flow id %d out of stream range", f.ID)
	}
	if f.Size < 0 || int64(f.Size) > math.MaxInt32 {
		return fmt.Errorf("traffic: flow %d size %d out of stream range", f.ID, f.Size)
	}
	if f.Src < 0 || f.Dst < 0 || int64(f.Src) > math.MaxInt32 || int64(f.Dst) > math.MaxInt32 {
		return fmt.Errorf("traffic: flow %d endpoints %d->%d out of stream range", f.ID, f.Src, f.Dst)
	}
	if f.WeightHops < 0 || f.WeightHops > MaxRouteLen {
		return fmt.Errorf("traffic: flow %d has invalid WeightHops %d", f.ID, f.WeightHops)
	}
	if len(f.Routes) == 0 {
		return fmt.Errorf("traffic: flow %d has no routes", f.ID)
	}
	if len(f.Routes) > maxStreamRoutes {
		return fmt.Errorf("traffic: flow %d has %d routes (max %d)", f.ID, len(f.Routes), maxStreamRoutes)
	}
	if f.Redundant < 0 || f.Redundant > len(f.Routes) {
		return fmt.Errorf("traffic: flow %d claims %d redundant routes but has %d", f.ID, f.Redundant, len(f.Routes))
	}
	for _, rt := range f.Routes {
		if len(rt) < 2 {
			return fmt.Errorf("traffic: flow %d has a degenerate route", f.ID)
		}
		if len(rt) > maxStreamNodes {
			return fmt.Errorf("traffic: flow %d route exceeds %d hops", f.ID, MaxRouteLen)
		}
		if rt.Src() != f.Src || rt.Dst() != f.Dst {
			return fmt.Errorf("traffic: flow %d route %v does not connect %d->%d", f.ID, rt, f.Src, f.Dst)
		}
		for _, v := range rt {
			if v < 0 || int64(v) > math.MaxInt32 {
				return fmt.Errorf("traffic: flow %d route node %d out of stream range", f.ID, v)
			}
		}
	}
	return nil
}

// ReadStore consumes an entire flow stream into a columnar store.
func ReadStore(r io.Reader) (*Store, error) {
	sr := NewStreamReader(r)
	s := NewStore(0, 0)
	for {
		f, err := sr.Next()
		if errors.Is(err, io.EOF) {
			return s, nil
		}
		if err != nil {
			return nil, err
		}
		if err := s.Append(&f); err != nil {
			return nil, err
		}
	}
}

// ReadAny decodes a traffic load from any supported encoding: a binary or
// JSONL flow stream (via the columnar store, so the result shares arena
// backing), or the classic whole-document JSON load.
func ReadAny(r io.Reader) (*Load, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	peek, _ := br.Peek(len(binaryMagic))
	if bytes.Equal(peek, binaryMagic) {
		s, err := ReadStore(br)
		if err != nil {
			return nil, err
		}
		return s.Materialize(nil), nil
	}
	// A JSONL stream starts with the header object on its own line; the
	// classic document form starts with {"flows": ...} spanning lines.
	// Sniff a bounded prefix for the header marker.
	const sniffLen = 256
	prefix, _ := br.Peek(sniffLen)
	if i := bytes.IndexByte(prefix, '\n'); i >= 0 {
		var h streamHeader
		if json.Unmarshal(prefix[:i], &h) == nil && h.Format == jsonlFormatID {
			s, err := ReadStore(br)
			if err != nil {
				return nil, err
			}
			return s.Materialize(nil), nil
		}
	}
	return ReadJSON(br)
}

// LoadAnyFile reads a load from a file in any supported encoding.
func LoadAnyFile(path string) (*Load, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadAny(f)
}
