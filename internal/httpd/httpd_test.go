package httpd

import (
	"context"
	"io"
	"net"
	"net/http"
	"testing"
	"time"
)

func listen(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return ln
}

// TestServeGracefulShutdown: cancelling the context drains the server and
// Serve returns nil, with requests answered until the very end.
func TestServeGracefulShutdown(t *testing.T) {
	ln := listen(t)
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	})}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- Serve(ctx, srv, ln, time.Second) }()

	resp, err := http.Get("http://" + ln.Addr().String() + "/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "ok" {
		t.Fatalf("body = %q", body)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v on a clean shutdown", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after cancellation")
	}
}

// TestServeListenerFailure: a listener that dies on its own surfaces the
// serve error instead of hanging until the context cancels.
func TestServeListenerFailure(t *testing.T) {
	ln := listen(t)
	srv := &http.Server{}
	done := make(chan error, 1)
	go func() { done <- Serve(context.Background(), srv, ln, time.Second) }()
	ln.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Serve returned nil after the listener failed")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not notice the dead listener")
	}
}

// TestSignalContextStop: stop releases the registration and cancels the
// derived context.
func TestSignalContextStop(t *testing.T) {
	ctx, stop := SignalContext(context.Background())
	if ctx.Err() != nil {
		t.Fatalf("fresh signal context already cancelled: %v", ctx.Err())
	}
	stop()
	select {
	case <-ctx.Done():
	case <-time.After(time.Second):
		t.Fatal("stop did not cancel the context")
	}
}
