// Package httpd is the shared HTTP server lifecycle for the repository's
// long-running binaries: mhsd and `mhsim -serve` both hold an
// observability (or API) server open until interrupted, and both want the
// same exit path — a context cancelled by SIGINT/SIGTERM and a graceful
// drain of in-flight requests instead of a hard exit.
package httpd

import (
	"context"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"
)

// SignalContext returns a copy of parent that is cancelled on SIGINT or
// SIGTERM. The returned stop releases the signal registration (a second
// signal after stop kills the process with the default disposition, so a
// stuck shutdown can still be interrupted).
func SignalContext(parent context.Context) (ctx context.Context, stop context.CancelFunc) {
	return signal.NotifyContext(parent, os.Interrupt, syscall.SIGTERM)
}

// Serve runs srv on ln until ctx is cancelled, then shuts the server down
// gracefully, waiting up to grace for in-flight requests to finish before
// closing them forcefully. It returns nil on a clean shutdown and the
// serve or shutdown error otherwise.
func Serve(ctx context.Context, srv *http.Server, ln net.Listener, grace time.Duration) error {
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	select {
	case err := <-errCh:
		return err // the listener failed on its own; nothing to drain
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		srv.Close()
		return err
	}
	<-errCh // always http.ErrServerClosed once Shutdown has returned
	return nil
}
