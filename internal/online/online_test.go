package online

import (
	"math/rand"
	"testing"

	"octopus/internal/core"
	"octopus/internal/graph"
	"octopus/internal/traffic"
	"octopus/internal/verify"
)

func TestSingleFlowCompletesFirstEpoch(t *testing.T) {
	g := graph.Complete(3)
	arr := []Arrival{{
		Flow: traffic.Flow{ID: 7, Size: 10, Src: 0, Dst: 1, Routes: []traffic.Route{{0, 1}}},
		At:   0,
	}}
	res, err := Run(g, arr, Options{Core: core.Options{Window: 100, Delta: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 10 || res.Total != 10 {
		t.Fatalf("delivered %d/%d", res.Delivered, res.Total)
	}
	if res.Completion[7] != 1 {
		t.Fatalf("completion = %v, want epoch 1", res.Completion)
	}
	if len(res.Epochs) != 1 {
		t.Fatalf("epochs = %+v", res.Epochs)
	}
}

func TestLateArrivalWaitsForItsEpoch(t *testing.T) {
	g := graph.Complete(3)
	arr := []Arrival{{
		Flow: traffic.Flow{ID: 1, Size: 5, Src: 0, Dst: 1, Routes: []traffic.Route{{0, 1}}},
		At:   150, // arrives during epoch 1, admitted at the epoch-2 boundary
	}}
	res, err := Run(g, arr, Options{Core: core.Options{Window: 100, Delta: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completion[1] != 3 {
		t.Fatalf("completion = %v, want epoch 3 (admitted at slot 200)", res.Completion)
	}
	// Epochs 0 and 1 were idle.
	if res.Epochs[0].Offered != 0 || res.Epochs[1].Offered != 0 {
		t.Fatalf("expected idle leading epochs: %+v", res.Epochs)
	}
}

func TestOverloadDrainsAcrossEpochs(t *testing.T) {
	g := graph.Complete(8)
	rng := rand.New(rand.NewSource(3))
	p := traffic.DefaultSyntheticParams(8, 600) // 3x one epoch's capacity
	load, err := traffic.Synthetic(g, p, rng)
	if err != nil {
		t.Fatal(err)
	}
	var arr []Arrival
	for _, f := range load.Flows {
		arr = append(arr, Arrival{Flow: f, At: (f.ID % 3) * 200})
	}
	res, err := Run(g, arr, Options{Core: core.Options{Window: 200, Delta: 10}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != res.Total {
		t.Fatalf("delivered %d of %d", res.Delivered, res.Total)
	}
	if len(res.Completion) != len(arr) {
		t.Fatalf("only %d of %d flows completed", len(res.Completion), len(arr))
	}
	// Epoch accounting: delivered + backlog = offered each epoch.
	for _, e := range res.Epochs {
		if e.Offered != e.Delivered+e.Backlog {
			t.Fatalf("epoch %d: %d != %d + %d", e.Epoch, e.Offered, e.Delivered, e.Backlog)
		}
	}
	if res.MeanCompletionEpochs(arr, 200) < 1 {
		t.Fatalf("mean completion %f < 1 epoch", res.MeanCompletionEpochs(arr, 200))
	}
}

func TestMaxEpochsCap(t *testing.T) {
	g := graph.Complete(4)
	arr := []Arrival{{
		Flow: traffic.Flow{ID: 1, Size: 1000, Src: 0, Dst: 1, Routes: []traffic.Route{{0, 1}}},
		At:   0,
	}}
	res, err := Run(g, arr, Options{Core: core.Options{Window: 50, Delta: 10}, MaxEpochs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Epochs) != 2 {
		t.Fatalf("epochs = %d, want 2", len(res.Epochs))
	}
	if res.Delivered >= res.Total {
		t.Fatal("cap did not bite")
	}
	if _, done := res.Completion[1]; done {
		t.Fatal("incomplete flow marked completed")
	}
}

func TestOnlineValidation(t *testing.T) {
	g := graph.Complete(3)
	mk := func() Arrival {
		return Arrival{Flow: traffic.Flow{ID: 1, Size: 1, Src: 0, Dst: 1, Routes: []traffic.Route{{0, 1}}}}
	}
	if _, err := Run(g, []Arrival{mk()}, Options{}); err == nil {
		t.Fatal("zero window accepted")
	}
	neg := mk()
	neg.At = -5
	if _, err := Run(g, []Arrival{neg}, Options{Core: core.Options{Window: 10, Delta: 1}}); err == nil {
		t.Fatal("negative arrival accepted")
	}
	if _, err := Run(g, []Arrival{mk(), mk()}, Options{Core: core.Options{Window: 10, Delta: 1}}); err == nil {
		t.Fatal("duplicate IDs accepted")
	}
}

func TestOnlineEmptyArrivals(t *testing.T) {
	g := graph.Complete(3)
	res, err := Run(g, nil, Options{Core: core.Options{Window: 10, Delta: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 0 || res.Delivered != 0 || len(res.Epochs) != 0 {
		t.Fatalf("empty run produced %+v", res)
	}
	if res.MeanCompletionEpochs(nil, 10) != 0 {
		t.Fatal("mean completion of nothing nonzero")
	}
}

// TestMeanCompletionEpochs pins the metric's edge cases: a window larger
// than the whole run, flows that never complete (excluded rather than
// skewing the mean), and a run where nothing completes at all.
func TestMeanCompletionEpochs(t *testing.T) {
	g := graph.Complete(4)
	mk := func(id, size, at int) Arrival {
		return Arrival{
			Flow: traffic.Flow{ID: id, Size: size, Src: 0, Dst: 1, Routes: []traffic.Route{{0, 1}}},
			At:   at,
		}
	}

	// Window much larger than the run: everything is admitted at boundary 0,
	// fits in epoch 0, and completes one epoch after arrival. The flows use
	// disjoint links so neither waits for the other.
	second := Arrival{
		Flow: traffic.Flow{ID: 2, Size: 2, Src: 2, Dst: 3, Routes: []traffic.Route{{2, 3}}},
	}
	arr := []Arrival{mk(1, 3, 0), second}
	res, err := Run(g, arr, Options{Core: core.Options{Window: 1 << 20, Delta: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.MeanCompletionEpochs(arr, 1<<20); got != 1 {
		t.Fatalf("huge-window mean = %f, want 1", got)
	}

	// A mid-epoch arrival waits for the next boundary, and the wait counts:
	// admitted at boundary 1, done at epoch 2 → two epochs, mean 1.5.
	late := arr
	late[1].At = 5
	res, err = Run(g, late, Options{Core: core.Options{Window: 1 << 20, Delta: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.MeanCompletionEpochs(late, 1<<20); got != 1.5 {
		t.Fatalf("mid-epoch-arrival mean = %f, want 1.5", got)
	}

	// A flow too large to finish under MaxEpochs never enters Completion,
	// so the mean reflects only the flow that did complete.
	arr = []Arrival{mk(1, 1, 0), mk(2, 10000, 0)}
	res, err = Run(g, arr, Options{Core: core.Options{Window: 50, Delta: 5}, MaxEpochs: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, done := res.Completion[2]; done {
		t.Fatal("oversized flow reported complete")
	}
	if got := res.MeanCompletionEpochs(arr, 50); got != 1 {
		t.Fatalf("mean over the completed flow = %f, want 1", got)
	}

	// Nothing completes: the mean degrades to zero instead of dividing by
	// zero, whether Completion is empty or the arrivals all missed it.
	arr = []Arrival{mk(1, 10000, 0)}
	res, err = Run(g, arr, Options{Core: core.Options{Window: 50, Delta: 5}, MaxEpochs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.MeanCompletionEpochs(arr, 50); got != 0 {
		t.Fatalf("mean with no completions = %f, want 0", got)
	}
	other := []Arrival{mk(99, 1, 0)}
	full, err := Run(g, []Arrival{mk(1, 1, 0)}, Options{Core: core.Options{Window: 50, Delta: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if got := full.MeanCompletionEpochs(other, 50); got != 0 {
		t.Fatalf("mean over unmatched arrivals = %f, want 0", got)
	}
}

// TestEpochPlansValidate audits every epoch's schedule with the independent
// validator: each epoch's plan must be feasible for the exact load it
// scheduled, with the plan's claimed metrics matching the replay.
func TestEpochPlansValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		inst := verify.RandomInstance(rng)
		if len(inst.Load.Flows) == 0 {
			continue
		}
		var arr []Arrival
		for i, f := range inst.Load.Flows {
			f.Routes = f.Routes[:1]
			arr = append(arr, Arrival{Flow: f, At: i * inst.Window / 2})
		}
		res, err := Run(inst.G, arr, Options{
			Core:      core.Options{Window: inst.Window, Delta: inst.Delta},
			KeepPlans: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Delivered != res.Total {
			t.Fatalf("trial %d: online run left %d of %d packets undelivered",
				trial, res.Total-res.Delivered, res.Total)
		}
		audited := 0
		for _, ep := range res.Epochs {
			if ep.Plan == nil {
				if ep.Offered != 0 {
					t.Fatalf("trial %d epoch %d: offered %d packets but kept no plan", trial, ep.Epoch, ep.Offered)
				}
				continue
			}
			audited++
			_, err := verify.Schedule(inst.G, ep.Load, ep.Plan.Schedule, verify.Options{
				Window: inst.Window,
				Claim: &verify.Claim{
					Delivered: ep.Plan.Delivered,
					Hops:      ep.Plan.Hops,
					Psi:       ep.Plan.Psi,
				},
			})
			if err != nil {
				t.Fatalf("trial %d epoch %d: %v", trial, ep.Epoch, err)
			}
		}
		if audited == 0 {
			t.Fatalf("trial %d: no epochs audited", trial)
		}
	}
}
