package online

import (
	"octopus/internal/fault"
	"octopus/internal/graph"
	"octopus/internal/traffic"
)

// RedundantFaultOptions configures a fault-tolerant online run over a
// redundancy-expanded arrival stream (see traffic.ExpandRedundant): each
// critical flow arrives as several single-route copy flows, identified as
// one group by Redundancy.
type RedundantFaultOptions struct {
	FaultOptions

	// Redundancy maps arrival flow IDs to their copy groups. nil (or an
	// empty group map) makes the run identical to RunFaulty modulo the
	// NoReactive switch.
	Redundancy *traffic.Redundancy

	// NoReactive disables the epoch-boundary BFS repair: a flow whose
	// every route died is dropped outright (unless a sibling copy of its
	// group survives). This isolates the proactive arm of the
	// proactive-vs-reactive comparison; RunFaulty always repairs.
	NoReactive bool
}

// RunRedundantFaulty layers proactive multipath redundancy under the
// reactive fault-tolerant loop of RunFaulty. The arrivals are expected to
// be redundancy-expanded: copies of a critical flow are independent
// arrivals tied together by opt.Redundancy. The loop is RunFaulty's —
// epoch snapshots, repair, plan, audit — with two differences at the
// repair step and in the accounting:
//
//   - a copy whose every route died is discarded without repair when a
//     sibling copy of its group still has a live route (counted as
//     SurvivedRedundant): the survivor already carries the group's data;
//   - delivery is deduplicated per group into UniqueDelivered /
//     UniqueTotal — a group counts once, by its best copy — while the raw
//     Delivered / Psi keep the duplicate effort visible as the overhead ψ
//     of proactive protection.
//
// With an empty Redundancy and NoReactive false the run is bit-identical
// to RunFaulty. The run is deterministic given (arrivals, trace, options).
func RunRedundantFaulty(g *graph.Digraph, arrivals []Arrival, trace *fault.Trace, opt RedundantFaultOptions) (*FaultResult, error) {
	return runFaulty(g, arrivals, trace, opt.FaultOptions, opt.Redundancy, !opt.NoReactive)
}
