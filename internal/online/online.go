// Package online schedules dynamically arriving flows — the online
// generalization the paper's conclusion (§9) names as future work. Time is
// divided into scheduling epochs of one window each; at every epoch
// boundary the controller merges newly arrived flows with the backlog
// carried over from previous epochs (packets continue from their current
// positions in the network) and runs the Octopus scheduler on the combined
// load. Older traffic keeps lower flow IDs, so the paper's
// weight-then-flow-ID priority scheme naturally ages the backlog forward.
package online

import (
	"errors"
	"fmt"
	"sort"

	"octopus/internal/core"
	"octopus/internal/graph"
	"octopus/internal/obs"
	"octopus/internal/traffic"
)

// Arrival is one flow plus the slot at which the controller learns of it.
type Arrival struct {
	Flow traffic.Flow
	At   int
}

// Options configures an online run. Core.Window is the epoch length.
// Core.Obs, when set, additionally receives the online layer's per-epoch
// metrics and "online.epoch" trace events (the per-epoch planner runs
// already inherit it through Core).
type Options struct {
	Core core.Options
	// MaxEpochs caps the run (0 = run until every admitted flow is
	// delivered, with a safety cap relative to the offered load).
	MaxEpochs int
	// KeepPlans retains each epoch's scheduled load and plan result on its
	// EpochStat, so callers (and the verification tests) can audit every
	// per-epoch schedule independently. Costs memory proportional to the
	// run; off by default.
	KeepPlans bool
}

// EpochStat summarizes one scheduling epoch.
type EpochStat struct {
	Epoch     int // 0-based epoch index
	Arrived   int // packets newly admitted at this epoch boundary
	Offered   int // packets scheduled this epoch (arrivals + backlog)
	Delivered int
	Backlog   int // packets carried into the next epoch

	// Plan and Load are the epoch's scheduler result and the exact load it
	// scheduled (nil unless Options.KeepPlans).
	Plan *core.Result
	Load *traffic.Load
}

// Result reports an online run.
type Result struct {
	Epochs    []EpochStat
	Delivered int
	Total     int
	// Completion maps each arrival's flow ID to the 1-based epoch in
	// which its last packet was delivered (absent if never completed).
	Completion map[int]int
}

// MeanCompletionEpochs returns the average number of epochs between a
// flow's arrival epoch and its completion, over completed flows (0 when
// none completed).
func (r *Result) MeanCompletionEpochs(arrivals []Arrival, window int) float64 {
	if len(r.Completion) == 0 {
		return 0
	}
	total := 0.0
	count := 0
	for _, a := range arrivals {
		done, ok := r.Completion[a.Flow.ID]
		if !ok {
			continue
		}
		arriveEpoch := a.At/window + 1 // admitted at the next boundary
		total += float64(done - arriveEpoch + 1)
		count++
	}
	if count == 0 {
		return 0
	}
	return total / float64(count)
}

// observeEpoch records one scheduled epoch on the observer: the per-epoch
// counters, the live queue-depth gauge, and the "online.epoch" trace event.
// Read-only with respect to the run; a nil observer costs the Enabled check.
func observeEpoch(o *obs.Observer, stat *EpochStat, reconfigs int) {
	if !o.Enabled() {
		return
	}
	o.Counter("octopus_online_epochs_total").Inc()
	o.Counter("octopus_online_arrived_total").Add(int64(stat.Arrived))
	o.Counter("octopus_online_delivered_total").Add(int64(stat.Delivered))
	o.Counter("octopus_online_reconfigs_total").Add(int64(reconfigs))
	o.Gauge("octopus_online_backlog").Set(int64(stat.Backlog))
	o.Tracer().Emit("online.epoch",
		obs.I("epoch", int64(stat.Epoch)),
		obs.I("arrived", int64(stat.Arrived)),
		obs.I("offered", int64(stat.Offered)),
		obs.I("delivered", int64(stat.Delivered)),
		obs.I("backlog", int64(stat.Backlog)),
		obs.I("reconfigs", int64(reconfigs)),
	)
}

// Run schedules the arrivals over successive epochs.
func Run(g *graph.Digraph, arrivals []Arrival, opt Options) (*Result, error) {
	if opt.Core.Window <= 0 {
		return nil, errors.New("online: Core.Window must be positive")
	}
	seen := make(map[int]bool, len(arrivals))
	total := 0
	for _, a := range arrivals {
		if a.At < 0 {
			return nil, fmt.Errorf("online: flow %d has negative arrival %d", a.Flow.ID, a.At)
		}
		if seen[a.Flow.ID] {
			return nil, fmt.Errorf("online: duplicate arrival flow ID %d", a.Flow.ID)
		}
		seen[a.Flow.ID] = true
		total += a.Flow.Size
	}
	queue := append([]Arrival(nil), arrivals...)
	sort.SliceStable(queue, func(i, j int) bool { return queue[i].At < queue[j].At })

	maxEpochs := opt.MaxEpochs
	if maxEpochs == 0 {
		// Safety cap: the offered load can always drain within
		// total-hops epochs (one packet-hop per epoch is a gross
		// underestimate of progress).
		maxEpochs = 16
		for _, a := range queue {
			maxEpochs += a.Flow.Size * traffic.MaxRouteLen
		}
	}

	res := &Result{Total: total, Completion: make(map[int]int)}
	backlog := &traffic.Load{}
	// origin maps current backlog flow IDs to arrival flow IDs.
	origin := make(map[int]int)
	outstanding := make(map[int]int) // arrival flow ID -> undelivered packets
	nextArrival := 0
	nextID := 0

	for epoch := 0; epoch < maxEpochs; epoch++ {
		boundary := epoch * opt.Core.Window
		arrivedPkts := 0
		for nextArrival < len(queue) && queue[nextArrival].At <= boundary {
			a := queue[nextArrival]
			f := a.Flow
			origin[nextID] = f.ID
			outstanding[f.ID] = f.Size
			f.ID = nextID
			nextID++
			backlog.Flows = append(backlog.Flows, f)
			arrivedPkts += f.Size
			nextArrival++
		}
		if len(backlog.Flows) == 0 {
			if nextArrival == len(queue) {
				break // drained and no more arrivals
			}
			res.Epochs = append(res.Epochs, EpochStat{Epoch: epoch})
			continue // idle epoch waiting for arrivals
		}

		s, err := core.New(g, backlog, opt.Core)
		if err != nil {
			return nil, err
		}
		sres, err := s.Run()
		if err != nil {
			return nil, err
		}
		// Per-flow delivery accounting against the arrivals.
		pending := s.PendingByFlow()
		for i := range backlog.Flows {
			f := &backlog.Flows[i]
			delivered := f.Size - pending[f.ID]
			if delivered == 0 {
				continue
			}
			orig := origin[f.ID]
			outstanding[orig] -= delivered
			if outstanding[orig] == 0 {
				res.Completion[orig] = epoch + 1
			}
		}
		residual, remap := s.ResidualLoadMap()
		newOrigin := make(map[int]int, len(remap))
		maxNew := -1
		for newID, oldID := range remap {
			newOrigin[newID] = origin[oldID]
			if newID > maxNew {
				maxNew = newID
			}
		}
		res.Delivered += sres.Delivered
		stat := EpochStat{
			Epoch:     epoch,
			Arrived:   arrivedPkts,
			Offered:   sres.TotalPackets,
			Delivered: sres.Delivered,
			Backlog:   sres.Pending,
		}
		observeEpoch(opt.Core.Obs, &stat, len(sres.Schedule.Configs))
		if opt.KeepPlans {
			stat.Plan = sres
			stat.Load = backlog.Clone()
		}
		res.Epochs = append(res.Epochs, stat)
		backlog = residual
		origin = newOrigin
		nextID = maxNew + 1
	}
	return res, nil
}
