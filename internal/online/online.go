// Package online schedules dynamically arriving flows — the online
// generalization the paper's conclusion (§9) names as future work. Time is
// divided into scheduling epochs of one window each; at every epoch
// boundary the controller merges newly arrived flows with the backlog
// carried over from previous epochs (packets continue from their current
// positions in the network) and runs the Octopus scheduler on the combined
// load. Older traffic keeps lower flow IDs, so the paper's
// weight-then-flow-ID priority scheme naturally ages the backlog forward.
//
// The epoch state machine itself lives in internal/engine; the Run
// functions here are thin batch drivers over engine.Pipeline, pinned
// bit-identical to the pre-extraction monolithic loops by the golden
// fingerprints in testdata/engine_golden.json.
package online

import (
	"errors"
	"fmt"
	"sort"

	"octopus/internal/core"
	"octopus/internal/engine"
	"octopus/internal/graph"
	"octopus/internal/obs/flight"
	"octopus/internal/traffic"
)

// Arrival is one flow plus the slot at which the controller learns of it.
type Arrival = engine.Arrival

// Options configures an online run. Core.Window is the epoch length.
// Core.Obs, when set, additionally receives the online layer's per-epoch
// metrics and "online.epoch" trace events (the per-epoch planner runs
// already inherit it through Core).
type Options struct {
	Core core.Options
	// MaxEpochs caps the run (0 = run until every admitted flow is
	// delivered, with a safety cap relative to the offered load).
	MaxEpochs int
	// KeepPlans retains each epoch's scheduled load and plan result on its
	// EpochStat, so callers (and the verification tests) can audit every
	// per-epoch schedule independently. Costs memory proportional to the
	// run; off by default.
	KeepPlans bool
	// Flight receives per-flow lifecycle events keyed by arrival flow IDs
	// (see engine.Config.Flight). nil disables recording; results are
	// bit-identical either way.
	Flight *flight.Recorder
}

// EpochStat summarizes one scheduling epoch.
type EpochStat = engine.EpochStat

// Result reports an online run.
type Result struct {
	Epochs    []EpochStat
	Delivered int
	Total     int
	// Completion maps each arrival's flow ID to the 1-based epoch in
	// which its last packet was delivered (absent if never completed).
	Completion map[int]int
}

// MeanCompletionEpochs returns the average number of epochs between a
// flow's arrival epoch and its completion, over completed flows (0 when
// none completed).
func (r *Result) MeanCompletionEpochs(arrivals []Arrival, window int) float64 {
	if len(r.Completion) == 0 {
		return 0
	}
	total := 0.0
	count := 0
	for _, a := range arrivals {
		done, ok := r.Completion[a.Flow.ID]
		if !ok {
			continue
		}
		arriveEpoch := a.At/window + 1 // admitted at the next boundary
		total += float64(done - arriveEpoch + 1)
		count++
	}
	if count == 0 {
		return 0
	}
	return total / float64(count)
}

// validateArrivals checks the batch drivers' shared preconditions and
// returns the total and redundancy-deduplicated packet counts.
func validateArrivals(arrivals []Arrival, red *traffic.Redundancy) (total, uniqueTotal int, err error) {
	seen := make(map[int]bool, len(arrivals))
	for _, a := range arrivals {
		if a.At < 0 {
			return 0, 0, fmt.Errorf("online: flow %d has negative arrival %d", a.Flow.ID, a.At)
		}
		if seen[a.Flow.ID] {
			return 0, 0, fmt.Errorf("online: duplicate arrival flow ID %d", a.Flow.ID)
		}
		seen[a.Flow.ID] = true
		total += a.Flow.Size
		if !red.Duplicate(a.Flow.ID) {
			uniqueTotal += a.Flow.Size
		}
	}
	return total, uniqueTotal, nil
}

// sortedQueue returns the arrivals stable-sorted by At, the admission
// order the engine expects.
func sortedQueue(arrivals []Arrival) []Arrival {
	queue := append([]Arrival(nil), arrivals...)
	sort.SliceStable(queue, func(i, j int) bool { return queue[i].At < queue[j].At })
	return queue
}

// epochCap returns the run's epoch budget: the configured cap, or a safety
// cap relative to the offered load (one packet-hop per epoch is a gross
// underestimate of progress, so the load can always drain within it).
func epochCap(maxEpochs int, queue []Arrival) int {
	if maxEpochs != 0 {
		return maxEpochs
	}
	maxEpochs = 16
	for _, a := range queue {
		maxEpochs += a.Flow.Size * traffic.MaxRouteLen
	}
	return maxEpochs
}

// Run schedules the arrivals over successive epochs.
func Run(g *graph.Digraph, arrivals []Arrival, opt Options) (*Result, error) {
	if opt.Core.Window <= 0 {
		return nil, errors.New("online: Core.Window must be positive")
	}
	total, _, err := validateArrivals(arrivals, nil)
	if err != nil {
		return nil, err
	}
	queue := sortedQueue(arrivals)

	p, err := engine.New(g, engine.Config{Core: opt.Core, KeepPlans: opt.KeepPlans, Flight: opt.Flight})
	if err != nil {
		return nil, err
	}
	if err := p.SubmitAll(queue); err != nil {
		return nil, err
	}

	res := &Result{Total: total}
	maxEpochs := epochCap(opt.MaxEpochs, queue)
	for epoch := 0; epoch < maxEpochs; epoch++ {
		plan, err := p.PlanNext()
		if err != nil {
			return nil, err
		}
		stat, err := p.Commit(plan)
		if err != nil {
			return nil, err
		}
		if plan.Kind == engine.PlanDrained {
			break
		}
		res.Delivered += stat.Delivered
		res.Epochs = append(res.Epochs, stat.EpochStat)
	}
	res.Completion = p.Completion()
	return res, nil
}
