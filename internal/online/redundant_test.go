package online

import (
	"math/rand"
	"reflect"
	"testing"

	"octopus/internal/core"
	"octopus/internal/fault"
	"octopus/internal/graph"
	"octopus/internal/traffic"
	"octopus/internal/verify"
)

// TestRedundantFaultyIdentityWhenKOne is the k=1 bit-identity property:
// with an empty redundancy map and reactive repair on, RunRedundantFaulty
// must be indistinguishable from RunFaulty on arbitrary instances and
// failure traces — same struct, bit for bit.
func TestRedundantFaultyIdentityWhenKOne(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 12; trial++ {
		inst := verify.RandomInstance(rng)
		if len(inst.Load.Flows) == 0 {
			continue
		}
		var arr []Arrival
		for i, f := range inst.Load.Flows {
			f.Routes = f.Routes[:1]
			arr = append(arr, Arrival{Flow: f, At: i * inst.Window / 3})
		}
		var tr *fault.Trace
		if trial%2 == 0 && len(arr) > 0 {
			// Break the first flow's first hop for a while.
			r := arr[0].Flow.Routes[0]
			tr = &fault.Trace{Events: []fault.Event{
				{At: 0, Kind: fault.LinkDown, From: r[0], To: r[1]},
				{At: 2 * inst.Window, Kind: fault.LinkUp, From: r[0], To: r[1]},
			}}
		}
		opt := FaultOptions{Options: Options{Core: core.Options{Window: inst.Window, Delta: inst.Delta}}}
		want, err := RunFaulty(inst.G, arr, tr, opt)
		if err != nil {
			t.Fatalf("trial %d: RunFaulty: %v", trial, err)
		}
		for name, red := range map[string]*traffic.Redundancy{"nil": nil, "empty": {}} {
			got, err := RunRedundantFaulty(inst.G, arr, tr, RedundantFaultOptions{
				FaultOptions: opt, Redundancy: red,
			})
			if err != nil {
				t.Fatalf("trial %d (%s): RunRedundantFaulty: %v", trial, name, err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("trial %d (%s): k=1 redundant run diverges from RunFaulty:\n%+v\nvs\n%+v",
					trial, name, got, want)
			}
		}
		if want.UniqueDelivered != want.Delivered || want.UniqueTotal != want.Total {
			t.Fatalf("trial %d: unique metrics do not mirror raw without redundancy: %+v", trial, want)
		}
	}
}

// TestRedundantCopySurvivesFailure kills the primary copy's route before
// anything moves, with reactive repair disabled: the group must survive
// purely through its proactive alternate, while the same flow without a
// copy is lost.
func TestRedundantCopySurvivesFailure(t *testing.T) {
	g := graph.Complete(4)
	tr := &fault.Trace{Events: []fault.Event{{At: 0, Kind: fault.LinkDown, From: 0, To: 3}}}
	opt := RedundantFaultOptions{
		FaultOptions: FaultOptions{Options: Options{Core: core.Options{Window: 100, Delta: 5}}},
		Redundancy:   &traffic.Redundancy{Group: map[int]int{1: 1, 5: 1}},
		NoReactive:   true,
	}
	arr := []Arrival{
		{Flow: traffic.Flow{ID: 1, Size: 6, Src: 0, Dst: 3, Routes: []traffic.Route{{0, 3}}}, At: 0},
		{Flow: traffic.Flow{ID: 5, Size: 6, Src: 0, Dst: 3, Routes: []traffic.Route{{0, 1, 3}}}, At: 0},
	}
	res, err := RunRedundantFaulty(g, arr, tr, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.SurvivedRedundant != 6 || res.Dropped != 0 {
		t.Fatalf("survived %d dropped %d, want 6/0", res.SurvivedRedundant, res.Dropped)
	}
	if res.UniqueTotal != 6 || res.UniqueDelivered != 6 {
		t.Fatalf("unique %d/%d, want 6/6 (the copy carries the group)",
			res.UniqueDelivered, res.UniqueTotal)
	}
	if res.Delivered != 6 {
		t.Fatalf("raw delivered %d, want 6 (only the copy moves)", res.Delivered)
	}
	// Packet conservation over the whole run.
	if res.Delivered+res.Dropped+res.SurvivedRedundant != res.Total {
		t.Fatalf("packets not conserved: %+v", res)
	}

	// The same flow without a proactive copy, still without reactive
	// repair, is dropped outright even though the fabric has a detour.
	bare, err := RunRedundantFaulty(g, arr[:1], tr, RedundantFaultOptions{
		FaultOptions: opt.FaultOptions, NoReactive: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if bare.Dropped != 6 || bare.Delivered != 0 {
		t.Fatalf("no-reactive bare flow: delivered %d dropped %d, want 0/6",
			bare.Delivered, bare.Dropped)
	}
}

// TestRedundantPerEpochUniqueDelivery checks the per-epoch deduplicated
// accounting: two live copies racing the same group count once per epoch.
func TestRedundantPerEpochUniqueDelivery(t *testing.T) {
	g := graph.Complete(4)
	opt := RedundantFaultOptions{
		FaultOptions: FaultOptions{Options: Options{Core: core.Options{Window: 60, Delta: 5}}},
		Redundancy:   &traffic.Redundancy{Group: map[int]int{1: 1, 5: 1}},
	}
	arr := []Arrival{
		{Flow: traffic.Flow{ID: 1, Size: 4, Src: 0, Dst: 3, Routes: []traffic.Route{{0, 3}}}, At: 0},
		{Flow: traffic.Flow{ID: 5, Size: 4, Src: 0, Dst: 3, Routes: []traffic.Route{{0, 1, 3}}}, At: 0},
	}
	res, err := RunRedundantFaulty(g, arr, nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.UniqueTotal != 4 || res.UniqueDelivered != 4 {
		t.Fatalf("unique %d/%d, want 4/4", res.UniqueDelivered, res.UniqueTotal)
	}
	if res.Delivered != 8 {
		t.Fatalf("raw delivered %d, want 8 (both copies drain failure-free)", res.Delivered)
	}
	var epochUnique, epochRaw int
	for _, ep := range res.Epochs {
		epochUnique += ep.UniqueDelivered
		epochRaw += ep.Delivered
		if ep.UniqueDelivered > ep.Delivered {
			t.Fatalf("epoch %d: unique %d exceeds raw %d", ep.Epoch, ep.UniqueDelivered, ep.Delivered)
		}
	}
	if epochUnique != res.UniqueDelivered {
		t.Fatalf("per-epoch unique sums to %d, run total %d", epochUnique, res.UniqueDelivered)
	}
	if epochRaw != res.Delivered {
		t.Fatalf("per-epoch raw sums to %d, run total %d", epochRaw, res.Delivered)
	}
	if res.Psi <= 0 {
		t.Fatalf("Psi = %d, want positive (duplicates included)", res.Psi)
	}
}

// TestFaultEventsBeyondHorizon: a trace whose every event lies past the end
// of the run must replay bit-identically to a failure-free run.
func TestFaultEventsBeyondHorizon(t *testing.T) {
	g := graph.Complete(3)
	arr := []Arrival{{
		Flow: traffic.Flow{ID: 1, Size: 5, Src: 0, Dst: 2, Routes: []traffic.Route{{0, 2}}},
		At:   0,
	}}
	opt := FaultOptions{Options: Options{Core: core.Options{Window: 50, Delta: 5}}}
	want, err := RunFaulty(g, arr, nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	tr := &fault.Trace{Events: []fault.Event{
		{At: 1 << 20, Kind: fault.LinkDown, From: 0, To: 2},
		{At: 1<<20 + 1, Kind: fault.NodeDown, Node: 2},
	}}
	got, err := RunFaulty(g, arr, tr, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("events beyond the horizon changed the run:\n%+v\nvs\n%+v", got, want)
	}
}

// TestRequeueThenDrop advances packets one hop, then takes their
// destination down for good: the in-flight packets must be requeued and
// then dropped from their intermediate position — never silently delivered
// and never left in limbo.
func TestRequeueThenDrop(t *testing.T) {
	g := graph.Complete(3)
	arr := []Arrival{{
		// 2-hop route; the window fits one configuration, so epoch 0 moves
		// the packets to node 1 and no further.
		Flow: traffic.Flow{ID: 9, Size: 5, Src: 0, Dst: 2, Routes: []traffic.Route{{0, 1, 2}}},
		At:   0,
	}}
	tr := &fault.Trace{Events: []fault.Event{{At: 12, Kind: fault.NodeDown, Node: 2}}}
	res, err := RunFaulty(g, arr, tr, FaultOptions{Options: Options{Core: core.Options{Window: 12, Delta: 5}}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped != 5 || res.Delivered != 0 {
		t.Fatalf("delivered %d dropped %d, want 0/5", res.Delivered, res.Dropped)
	}
	if _, ok := res.Completion[9]; ok {
		t.Fatal("dropped flow marked completed")
	}
	// The drop happened at the boundary after the packets moved in-network.
	dropEpoch := -1
	for _, ep := range res.Epochs {
		if ep.Dropped > 0 {
			dropEpoch = ep.Epoch
		}
	}
	if dropEpoch < 1 {
		t.Fatalf("drop recorded at epoch %d, want a later boundary (packets moved first)", dropEpoch)
	}
}
