package online

import (
	"errors"
	"fmt"
	"sort"

	"octopus/internal/graph"
	"octopus/internal/matching"
	"octopus/internal/traffic"
)

// This file implements a queue-state-driven adaptive scheduler in the
// spirit of the online policies for reconfigurable switches the paper's
// related work cites [Wang & Javidi]: instead of planning a whole window
// offline from the traffic matrix (Octopus), the controller observes the
// instantaneous VOQ backlog, computes a max-weight matching (weight =
// queued packets per link), and holds it for a fixed duration; a
// hysteresis factor suppresses reconfigurations whose gain is marginal.
// It serves as the closed-loop baseline for the online package — and
// demonstrates why traffic-aware window planning wins when the load is
// known (the paper's setting): MaxWeight pays Δ far more often. Note the
// cited policies assume perfect queue state at every instant, exactly as
// modeled here.

// AdaptiveOptions configures MaxWeightAdaptive.
type AdaptiveOptions struct {
	Horizon int // total slots to run
	Delta   int // reconfiguration delay in slots

	// Hold is how many slots each matching is held before the controller
	// reconsiders. 0 selects the default of 10·Delta (10 when Delta is 0):
	// long enough to amortize the reconfiguration delay, short enough to
	// track the draining backlog. Negative is an error.
	Hold int

	// Hysteresis64 suppresses a reconfiguration unless the best
	// matching's backlog weight exceeds (Hysteresis64/64)× the current
	// matching's weight on today's queues. 0 disables (always switch to
	// the max-weight matching); 64 switches on any strict improvement;
	// larger values switch less often.
	Hysteresis64 int
}

// AdaptiveResult reports a MaxWeightAdaptive run.
type AdaptiveResult struct {
	Delivered int
	Total     int
	Hops      int
	Reconfigs int
	SlotsUsed int
}

// DeliveredFraction returns Delivered / Total.
func (r *AdaptiveResult) DeliveredFraction() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Delivered) / float64(r.Total)
}

// mwGroup is a backlog group: count packets at route[pos].
type mwGroup struct {
	route traffic.Route
	pos   int
	count int
}

// MaxWeightAdaptive runs the adaptive policy over dynamically arriving
// flows (each flow uses its primary route). Arrivals become visible to the
// controller at their arrival slot.
func MaxWeightAdaptive(g *graph.Digraph, arrivals []Arrival, opt AdaptiveOptions) (*AdaptiveResult, error) {
	if opt.Horizon <= 0 {
		return nil, errors.New("online: Horizon must be positive")
	}
	if opt.Hold < 0 {
		return nil, errors.New("online: Hold must not be negative")
	}
	if opt.Delta < 0 || opt.Hysteresis64 < 0 {
		return nil, errors.New("online: negative Delta or Hysteresis64")
	}
	if opt.Hold == 0 {
		opt.Hold = 10 * opt.Delta
		if opt.Hold == 0 {
			opt.Hold = 10
		}
	}
	queue := append([]Arrival(nil), arrivals...)
	sort.SliceStable(queue, func(i, j int) bool { return queue[i].At < queue[j].At })
	res := &AdaptiveResult{}
	for i := range queue {
		if queue[i].At < 0 {
			return nil, fmt.Errorf("online: flow %d has negative arrival", queue[i].Flow.ID)
		}
		res.Total += queue[i].Flow.Size
	}

	backlog := make(map[graph.Edge][]*mwGroup)
	admit := func(now int, next int) int {
		for next < len(queue) && queue[next].At <= now {
			f := queue[next].Flow
			r := f.Routes[0]
			e := graph.Edge{From: r[0], To: r[1]}
			backlog[e] = append(backlog[e], &mwGroup{route: r, pos: 0, count: f.Size})
			next++
		}
		return next
	}
	queued := func(e graph.Edge) int64 {
		var total int64
		for _, grp := range backlog[e] {
			total += int64(grp.count)
		}
		return total
	}
	weightOf := func(m []graph.Edge) int64 {
		var total int64
		for _, e := range m {
			total += queued(e)
		}
		return total
	}
	bestMatching := func() ([]graph.Edge, int64) {
		var we []matching.Edge
		edges := make([]graph.Edge, 0, len(backlog))
		for e := range backlog {
			edges = append(edges, e)
		}
		sort.Slice(edges, func(i, j int) bool {
			if edges[i].From != edges[j].From {
				return edges[i].From < edges[j].From
			}
			return edges[i].To < edges[j].To
		})
		for _, e := range edges {
			if w := queued(e); w > 0 {
				we = append(we, matching.Edge{From: e.From, To: e.To, Weight: w})
			}
		}
		if len(we) == 0 {
			return nil, 0
		}
		m, w := matching.MaxWeightBipartite(g.N(), we)
		links := make([]graph.Edge, len(m))
		for i, e := range m {
			links[i] = graph.Edge{From: e.From, To: e.To}
		}
		sort.Slice(links, func(i, j int) bool {
			if links[i].From != links[j].From {
				return links[i].From < links[j].From
			}
			return links[i].To < links[j].To
		})
		return links, w
	}
	sameLinks := func(a, b []graph.Edge) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}

	var current []graph.Edge
	now := 0
	next := admit(0, 0)
	for now < opt.Horizon {
		next = admit(now, next)
		links, bestW := bestMatching()
		if bestW == 0 {
			if next == len(queue) {
				break // drained
			}
			// Idle until the next arrival.
			now = queue[next].At
			continue
		}
		wantSwitch := true
		if len(current) > 0 && opt.Hysteresis64 > 0 {
			// Keep the current matching unless the best one beats it by
			// the hysteresis factor on today's backlog.
			wantSwitch = bestW*64 > weightOf(current)*int64(opt.Hysteresis64)
		}
		if wantSwitch && !sameLinks(current, links) {
			current = links
			now += opt.Delta
			res.Reconfigs++
			if now >= opt.Horizon {
				break
			}
		}
		hold := opt.Hold
		if now+hold > opt.Horizon {
			hold = opt.Horizon - now
		}
		// Serve each active link for the hold. Advancing packets are
		// buffered and enqueued after the pass so they cannot chain
		// across links within a single hold (one hop per hold, matching
		// the bulk model measured everywhere else).
		type advance struct {
			e   graph.Edge
			grp *mwGroup
		}
		var advanced []advance
		for _, e := range current {
			left := hold
			groups := backlog[e]
			for _, grp := range groups {
				if left == 0 {
					break
				}
				take := grp.count
				if take > left {
					take = left
				}
				grp.count -= take
				left -= take
				res.Hops += take
				if grp.pos+1 == len(grp.route)-1 {
					res.Delivered += take
					continue
				}
				nxt := graph.Edge{From: grp.route[grp.pos+1], To: grp.route[grp.pos+2]}
				advanced = append(advanced, advance{nxt, &mwGroup{
					route: grp.route, pos: grp.pos + 1, count: take,
				}})
			}
			// Drop drained groups.
			live := groups[:0]
			for _, grp := range groups {
				if grp.count > 0 {
					live = append(live, grp)
				}
			}
			if len(live) == 0 {
				delete(backlog, e)
			} else {
				backlog[e] = live
			}
		}
		for _, a := range advanced {
			backlog[a.e] = append(backlog[a.e], a.grp)
		}
		now += hold
	}
	res.SlotsUsed = now
	if res.SlotsUsed > opt.Horizon {
		res.SlotsUsed = opt.Horizon
	}
	return res, nil
}
