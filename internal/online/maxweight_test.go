package online

import (
	"math/rand"
	"testing"

	"octopus/internal/core"
	"octopus/internal/graph"
	"octopus/internal/traffic"
)

func TestMaxWeightAdaptiveSingleFlow(t *testing.T) {
	g := graph.Complete(3)
	arr := []Arrival{{
		Flow: traffic.Flow{ID: 1, Size: 20, Src: 0, Dst: 1, Routes: []traffic.Route{{0, 1}}},
		At:   0,
	}}
	res, err := MaxWeightAdaptive(g, arr, AdaptiveOptions{Horizon: 100, Delta: 5, Hold: 10})
	if err != nil {
		t.Fatal(err)
	}
	// One reconfiguration (the matching never changes), then 2 holds.
	if res.Delivered != 20 {
		t.Fatalf("delivered %d, want 20", res.Delivered)
	}
	if res.Reconfigs != 1 {
		t.Fatalf("reconfigs = %d, want 1", res.Reconfigs)
	}
}

func TestMaxWeightAdaptiveMultiHop(t *testing.T) {
	g := graph.Complete(4)
	arr := []Arrival{{
		Flow: traffic.Flow{ID: 1, Size: 10, Src: 0, Dst: 2, Routes: []traffic.Route{{0, 1, 2}}},
		At:   0,
	}}
	res, err := MaxWeightAdaptive(g, arr, AdaptiveOptions{Horizon: 200, Delta: 5, Hold: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 10 || res.Hops != 20 {
		t.Fatalf("delivered=%d hops=%d, want 10, 20", res.Delivered, res.Hops)
	}
}

func TestMaxWeightAdaptiveNoChainWithinHold(t *testing.T) {
	// A 2-hop flow whose both links could be active at once: at most one
	// hop per hold, so delivery needs two holds.
	g := graph.Complete(3)
	arr := []Arrival{{
		Flow: traffic.Flow{ID: 1, Size: 5, Src: 0, Dst: 2, Routes: []traffic.Route{{0, 1, 2}}},
		At:   0,
	}}
	// Horizon fits Δ + one hold only.
	res, err := MaxWeightAdaptive(g, arr, AdaptiveOptions{Horizon: 15, Delta: 5, Hold: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 0 || res.Hops != 5 {
		t.Fatalf("delivered=%d hops=%d, want 0, 5", res.Delivered, res.Hops)
	}
}

func TestMaxWeightHysteresisReducesReconfigs(t *testing.T) {
	g := graph.Complete(8)
	rng := rand.New(rand.NewSource(5))
	load, err := traffic.Synthetic(g, traffic.DefaultSyntheticParams(8, 400), rng)
	if err != nil {
		t.Fatal(err)
	}
	var arr []Arrival
	for _, f := range load.Flows {
		arr = append(arr, Arrival{Flow: f, At: 0})
	}
	eager, err := MaxWeightAdaptive(g, arr, AdaptiveOptions{Horizon: 800, Delta: 10, Hold: 20})
	if err != nil {
		t.Fatal(err)
	}
	lazy, err := MaxWeightAdaptive(g, arr, AdaptiveOptions{Horizon: 800, Delta: 10, Hold: 20, Hysteresis64: 96})
	if err != nil {
		t.Fatal(err)
	}
	if lazy.Reconfigs >= eager.Reconfigs {
		t.Fatalf("hysteresis did not reduce reconfigs: %d vs %d", lazy.Reconfigs, eager.Reconfigs)
	}
	if lazy.Delivered == 0 || eager.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
}

func TestOctopusEpochsBeatMaxWeightOnKnownLoad(t *testing.T) {
	// The paper's setting: the load is known up front. Window planning
	// (Octopus epochs) should beat the myopic queue-state policy.
	g := graph.Complete(10)
	rng := rand.New(rand.NewSource(7))
	load, err := traffic.Synthetic(g, traffic.DefaultSyntheticParams(10, 500), rng)
	if err != nil {
		t.Fatal(err)
	}
	var arr []Arrival
	for _, f := range load.Flows {
		arr = append(arr, Arrival{Flow: f, At: 0})
	}
	oct, err := Run(g, arr, Options{Core: core.Options{Window: 500, Delta: 20}, MaxEpochs: 1})
	if err != nil {
		t.Fatal(err)
	}
	mw, err := MaxWeightAdaptive(g, arr, AdaptiveOptions{Horizon: 500, Delta: 20, Hold: 40})
	if err != nil {
		t.Fatal(err)
	}
	if oct.Delivered <= mw.Delivered {
		t.Fatalf("Octopus epoch (%d) not above MaxWeight (%d)", oct.Delivered, mw.Delivered)
	}
}

func TestMaxWeightAdaptiveValidation(t *testing.T) {
	g := graph.Complete(3)
	arr := []Arrival{{
		Flow: traffic.Flow{ID: 1, Size: 1, Src: 0, Dst: 1, Routes: []traffic.Route{{0, 1}}},
	}}
	bad := []AdaptiveOptions{
		{Horizon: 0, Hold: 5},
		{Horizon: 100, Hold: -1},
		{Horizon: 100, Hold: 5, Delta: -1},
		{Horizon: 100, Hold: 5, Hysteresis64: -2},
	}
	for i, opt := range bad {
		if _, err := MaxWeightAdaptive(g, arr, opt); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	neg := arr
	neg[0].At = -1
	if _, err := MaxWeightAdaptive(g, neg, AdaptiveOptions{Horizon: 10, Hold: 2}); err == nil {
		t.Fatal("negative arrival accepted")
	}
}

func TestMaxWeightAdaptiveHoldDefault(t *testing.T) {
	// Hold 0 selects the library default of 10·Δ (10 when Δ is 0): the run
	// must behave exactly like an explicit hold of that length.
	g := graph.Complete(3)
	arr := []Arrival{{
		Flow: traffic.Flow{ID: 1, Size: 20, Src: 0, Dst: 1, Routes: []traffic.Route{{0, 1}}},
		At:   0,
	}}
	for _, tc := range []struct{ delta, want int }{{5, 50}, {0, 10}} {
		def, err := MaxWeightAdaptive(g, arr, AdaptiveOptions{Horizon: 100, Delta: tc.delta})
		if err != nil {
			t.Fatal(err)
		}
		explicit, err := MaxWeightAdaptive(g, arr, AdaptiveOptions{Horizon: 100, Delta: tc.delta, Hold: tc.want})
		if err != nil {
			t.Fatal(err)
		}
		if *def != *explicit {
			t.Fatalf("delta %d: default-hold run %+v != explicit hold %d run %+v", tc.delta, def, tc.want, explicit)
		}
	}
}

func TestMaxWeightAdaptiveIdlesUntilArrival(t *testing.T) {
	g := graph.Complete(3)
	arr := []Arrival{{
		Flow: traffic.Flow{ID: 1, Size: 5, Src: 0, Dst: 1, Routes: []traffic.Route{{0, 1}}},
		At:   50,
	}}
	res, err := MaxWeightAdaptive(g, arr, AdaptiveOptions{Horizon: 100, Delta: 5, Hold: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 5 {
		t.Fatalf("delivered %d, want 5", res.Delivered)
	}
	// Nothing before slot 50: the run must have idled, not spun.
	if res.Reconfigs != 1 {
		t.Fatalf("reconfigs = %d, want 1", res.Reconfigs)
	}
}
