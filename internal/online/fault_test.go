package online

import (
	"math/rand"
	"reflect"
	"testing"

	"octopus/internal/core"
	"octopus/internal/fault"
	"octopus/internal/graph"
	"octopus/internal/traffic"
	"octopus/internal/verify"
)

// TestEmptyTraceEquivalence is the satellite property: with an empty (or
// nil) fault trace, the fault-tolerant controller must produce bit-for-bit
// the same run as the fault-free controller — same per-epoch stats, same
// delivery, same completions.
func TestEmptyTraceEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 15; trial++ {
		inst := verify.RandomInstance(rng)
		if len(inst.Load.Flows) == 0 {
			continue
		}
		var arr []Arrival
		for i, f := range inst.Load.Flows {
			f.Routes = f.Routes[:1]
			arr = append(arr, Arrival{Flow: f, At: i * inst.Window / 2})
		}
		opt := Options{Core: core.Options{Window: inst.Window, Delta: inst.Delta}}
		want, err := Run(inst.G, arr, opt)
		if err != nil {
			t.Fatal(err)
		}
		for name, tr := range map[string]*fault.Trace{"nil": nil, "empty": {}} {
			got, err := RunFaulty(inst.G, arr, tr, FaultOptions{Options: opt})
			if err != nil {
				t.Fatalf("trial %d (%s trace): %v", trial, name, err)
			}
			if got.Delivered != want.Delivered || got.Total != want.Total || got.Dropped != 0 {
				t.Fatalf("trial %d (%s trace): delivered %d/%d dropped %d, want %d/%d dropped 0",
					trial, name, got.Delivered, got.Total, got.Dropped, want.Delivered, want.Total)
			}
			if !reflect.DeepEqual(got.Completion, want.Completion) {
				t.Fatalf("trial %d (%s trace): completions diverge:\n%v\n%v", trial, name, got.Completion, want.Completion)
			}
			if len(got.Epochs) != len(want.Epochs) {
				t.Fatalf("trial %d (%s trace): %d epochs vs %d", trial, name, len(got.Epochs), len(want.Epochs))
			}
			for i := range got.Epochs {
				if !reflect.DeepEqual(got.Epochs[i].EpochStat, want.Epochs[i]) {
					t.Fatalf("trial %d (%s trace) epoch %d stats diverge:\n%+v\n%+v",
						trial, name, i, got.Epochs[i].EpochStat, want.Epochs[i])
				}
				if got.Epochs[i].Rerouted != 0 || got.Epochs[i].Stranded != 0 || got.Epochs[i].Dropped != 0 {
					t.Fatalf("trial %d (%s trace) epoch %d reports degradation without faults: %+v",
						trial, name, i, got.Epochs[i])
				}
			}
		}
	}
}

// TestRerouteAroundFailedLink kills the only route of a flow; the controller
// must repair it onto a surviving path and still deliver everything.
func TestRerouteAroundFailedLink(t *testing.T) {
	g := graph.Complete(4)
	arr := []Arrival{{
		Flow: traffic.Flow{ID: 1, Size: 8, Src: 0, Dst: 1, Routes: []traffic.Route{{0, 1}}},
		At:   0,
	}}
	tr := &fault.Trace{Events: []fault.Event{{At: 0, Kind: fault.LinkDown, From: 0, To: 1}}}
	res, err := RunFaulty(g, arr, tr, FaultOptions{Options: Options{Core: core.Options{Window: 200, Delta: 5}}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 8 || res.Dropped != 0 {
		t.Fatalf("delivered %d dropped %d, want 8/0", res.Delivered, res.Dropped)
	}
	if res.Epochs[0].Rerouted != 8 {
		t.Fatalf("epoch 0 rerouted %d, want 8", res.Epochs[0].Rerouted)
	}
	if res.Epochs[0].Stranded != 0 {
		t.Fatalf("epoch 0 stranded %d, want 0 (packets were still at their source)", res.Epochs[0].Stranded)
	}
	if res.Epochs[0].FailedLinks != 1 {
		t.Fatalf("epoch 0 failed links %d, want 1", res.Epochs[0].FailedLinks)
	}
	if _, ok := res.Completion[1]; !ok {
		t.Fatal("rerouted flow never completed")
	}
	// The reference run should deliver at least as much per epoch.
	if res.Reference == nil || res.Reference.Delivered != 8 {
		t.Fatal("reference run missing or wrong")
	}
}

// TestStrandedInFlightRequeue forces packets one hop into the network, then
// kills their onward link at the next boundary: they must be requeued from
// their current position and rerouted, not silently delivered or lost.
func TestStrandedInFlightRequeue(t *testing.T) {
	g := graph.Complete(3)
	arr := []Arrival{{
		// 2-hop route; the window fits exactly one configuration, so epoch
		// 0 moves the packets to node 1 and no further.
		Flow: traffic.Flow{ID: 9, Size: 5, Src: 0, Dst: 2, Routes: []traffic.Route{{0, 1, 2}}},
		At:   0,
	}}
	tr := &fault.Trace{Events: []fault.Event{{At: 12, Kind: fault.LinkDown, From: 1, To: 2}}}
	res, err := RunFaulty(g, arr, tr, FaultOptions{Options: Options{Core: core.Options{Window: 12, Delta: 5}}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 5 || res.Dropped != 0 {
		t.Fatalf("delivered %d dropped %d, want 5/0", res.Delivered, res.Dropped)
	}
	var rerouted, stranded int
	for _, ep := range res.Epochs {
		rerouted += ep.Rerouted
		stranded += ep.Stranded
	}
	if rerouted != 5 || stranded != 5 {
		t.Fatalf("rerouted %d stranded %d, want 5/5", rerouted, stranded)
	}
}

// TestDropUnreachable isolates a destination node; the flow to it is
// dropped with accounting while the rest of the traffic still delivers.
func TestDropUnreachable(t *testing.T) {
	g := graph.Complete(4)
	arr := []Arrival{
		{Flow: traffic.Flow{ID: 1, Size: 6, Src: 0, Dst: 3, Routes: []traffic.Route{{0, 3}}}, At: 0},
		{Flow: traffic.Flow{ID: 2, Size: 4, Src: 1, Dst: 2, Routes: []traffic.Route{{1, 2}}}, At: 0},
	}
	tr := &fault.Trace{Events: []fault.Event{{At: 0, Kind: fault.NodeDown, Node: 3}}}
	res, err := RunFaulty(g, arr, tr, FaultOptions{Options: Options{Core: core.Options{Window: 100, Delta: 5}}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped != 6 {
		t.Fatalf("dropped %d, want 6", res.Dropped)
	}
	if res.Delivered != 4 {
		t.Fatalf("delivered %d, want 4", res.Delivered)
	}
	if _, ok := res.Completion[1]; ok {
		t.Fatal("dropped flow marked completed")
	}
	if _, ok := res.Completion[2]; !ok {
		t.Fatal("unaffected flow never completed")
	}
	if res.Epochs[0].FailedNodes != 1 {
		t.Fatalf("failed nodes %d, want 1", res.Epochs[0].FailedNodes)
	}
	if res.Degradation() <= 0 {
		t.Fatal("degradation should be positive after dropping packets")
	}
}

// TestRecoveryRestoresRoutes takes a link down and back up: while down the
// affected flow detours, afterwards new traffic uses the recovered link.
func TestRecoveryRestoresRoutes(t *testing.T) {
	g := graph.Ring(4) // only 0->1->2->3->0: no detours exist
	arr := []Arrival{
		{Flow: traffic.Flow{ID: 1, Size: 3, Src: 0, Dst: 1, Routes: []traffic.Route{{0, 1}}}, At: 0},
		{Flow: traffic.Flow{ID: 2, Size: 3, Src: 0, Dst: 1, Routes: []traffic.Route{{0, 1}}}, At: 30},
	}
	// Link 0->1 is down during epoch 0 and recovers at the epoch-1
	// boundary. On a ring with no alternative path the first flow has no
	// surviving route... except the long way around is also severed by the
	// same link; so it must be dropped. The second flow arrives after
	// recovery and delivers.
	tr := &fault.Trace{Events: []fault.Event{
		{At: 0, Kind: fault.LinkDown, From: 0, To: 1},
		{At: 30, Kind: fault.LinkUp, From: 0, To: 1},
	}}
	res, err := RunFaulty(g, arr, tr, FaultOptions{Options: Options{Core: core.Options{Window: 30, Delta: 2}}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped != 3 {
		t.Fatalf("dropped %d, want 3 (no surviving route while down)", res.Dropped)
	}
	if res.Delivered != 3 {
		t.Fatalf("delivered %d, want 3 (arrived after recovery)", res.Delivered)
	}
}

// TestDeltaJitterIdlesEpoch gives epoch 0 a jitter so large no
// configuration fits: the epoch must idle gracefully and the traffic
// deliver afterwards.
func TestDeltaJitterIdlesEpoch(t *testing.T) {
	g := graph.Complete(3)
	arr := []Arrival{{
		Flow: traffic.Flow{ID: 1, Size: 4, Src: 0, Dst: 1, Routes: []traffic.Route{{0, 1}}},
		At:   0,
	}}
	tr := &fault.Trace{DeltaJitter: []int{1000}}
	res, err := RunFaulty(g, arr, tr, FaultOptions{Options: Options{Core: core.Options{Window: 50, Delta: 5}}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Epochs[0].Offered != 0 || res.Epochs[0].Delivered != 0 || res.Epochs[0].Backlog != 4 {
		t.Fatalf("epoch 0 should idle under jitter: %+v", res.Epochs[0])
	}
	if res.Delivered != 4 {
		t.Fatalf("delivered %d, want 4", res.Delivered)
	}
}

// randomTrace builds a valid random failure trace over g: paired down/up
// events on random links and nodes plus bounded jitter.
func randomTrace(g *graph.Digraph, rng *rand.Rand, horizon int) *fault.Trace {
	tr := &fault.Trace{}
	edges := g.Edges()
	for i := 0; i < 1+rng.Intn(4); i++ {
		e := edges[rng.Intn(len(edges))]
		at := rng.Intn(horizon)
		tr.Events = append(tr.Events, fault.Event{At: at, Kind: fault.LinkDown, From: e.From, To: e.To})
		if rng.Intn(2) == 0 {
			tr.Events = append(tr.Events, fault.Event{At: at + 1 + rng.Intn(horizon), Kind: fault.LinkUp, From: e.From, To: e.To})
		}
	}
	if rng.Intn(2) == 0 {
		v := rng.Intn(g.N())
		at := rng.Intn(horizon)
		tr.Events = append(tr.Events, fault.Event{At: at, Kind: fault.NodeDown, Node: v})
		tr.Events = append(tr.Events, fault.Event{At: at + 1 + rng.Intn(horizon), Kind: fault.NodeUp, Node: v})
	}
	for i := 0; i < rng.Intn(3); i++ {
		tr.DeltaJitter = append(tr.DeltaJitter, rng.Intn(5))
	}
	return tr
}

// TestFaultyRunsDeterministicAndAudited fuzzes random instances with random
// failure traces: runs must be deterministic given (instance, trace), every
// packet must be either delivered or deliberately dropped, and every kept
// plan must re-verify against its epoch's surviving fabric.
func TestFaultyRunsDeterministicAndAudited(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 15; trial++ {
		inst := verify.RandomInstance(rng)
		if len(inst.Load.Flows) == 0 {
			continue
		}
		var arr []Arrival
		for i, f := range inst.Load.Flows {
			f.Routes = f.Routes[:1]
			arr = append(arr, Arrival{Flow: f, At: i * inst.Window / 2})
		}
		tr := randomTrace(inst.G, rng, 3*inst.Window)
		opt := FaultOptions{Options: Options{
			Core:      core.Options{Window: inst.Window, Delta: inst.Delta},
			KeepPlans: true,
		}}
		run := func() *FaultResult {
			res, err := RunFaulty(inst.G, arr, tr, opt)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			return res
		}
		a, b := run(), run()
		if !reflect.DeepEqual(a.Epochs, b.Epochs) || a.Delivered != b.Delivered || a.Dropped != b.Dropped {
			t.Fatalf("trial %d: nondeterministic fault run", trial)
		}
		if a.Delivered+a.Dropped > a.Total {
			t.Fatalf("trial %d: delivered %d + dropped %d exceeds total %d", trial, a.Delivered, a.Dropped, a.Total)
		}
		for _, ep := range a.Epochs {
			if ep.Plan == nil {
				continue
			}
			// Re-audit independently through the public fault-aware
			// verify entry point, from the intact fabric and the trace.
			rep, err := verify.EpochSchedule(inst.G, tr, ep.Epoch*inst.Window, ep.Load, ep.Plan.Schedule, verify.Options{
				Window: inst.Window,
			})
			if err != nil {
				t.Fatalf("trial %d epoch %d: %v", trial, ep.Epoch, err)
			}
			if rep.Delivered != ep.Plan.Delivered {
				t.Fatalf("trial %d epoch %d: replay delivered %d, plan claims %d",
					trial, ep.Epoch, rep.Delivered, ep.Plan.Delivered)
			}
		}
	}
}
