package online

import (
	"errors"
	"fmt"
	"sort"

	"octopus/internal/core"
	"octopus/internal/fault"
	"octopus/internal/graph"
	"octopus/internal/obs"
	"octopus/internal/traffic"
	"octopus/internal/verify"
)

// FaultOptions configures a fault-tolerant online run.
type FaultOptions struct {
	Options

	// SkipReference skips the failure-free reference run, leaving
	// FaultResult.Reference nil and every RefDelivered at -1. The reference
	// costs a second full online run; skip it when only the degraded
	// numbers matter.
	SkipReference bool
}

// FaultEpochStat extends EpochStat with the epoch's degradation accounting.
type FaultEpochStat struct {
	EpochStat

	FailedLinks int // links individually down at the boundary snapshot
	FailedNodes int // nodes down at the boundary snapshot

	// Rerouted counts packets whose every route was broken by failures and
	// was repaired onto a shortest surviving path at this boundary.
	Rerouted int
	// Stranded counts the rerouted packets that were requeued from
	// in-flight positions: stuck at an intermediate node whose onward
	// route died.
	Stranded int
	// Dropped counts packets dropped at this boundary because no surviving
	// route to their destination exists (source or destination unreachable
	// on the degraded fabric).
	Dropped int

	// SurvivedRedundant counts packets of copy flows whose every route died
	// at this boundary but whose redundancy group kept another copy with a
	// live route: the dead copy is discarded without reroute or drop — the
	// surviving copy already carries the group's data (always 0 without
	// redundancy; see RunRedundantFaulty).
	SurvivedRedundant int

	// UniqueDelivered is the epoch's redundancy-deduplicated delivery: the
	// increase of the run's unique delivered count (each copy group counts
	// once, by its best copy) during this epoch. Without redundancy it
	// mirrors Delivered.
	UniqueDelivered int

	// RefDelivered is the failure-free reference run's delivery in this
	// epoch (-1 when the reference was skipped).
	RefDelivered int

	// Fabric is the epoch's surviving-fabric snapshot (nil unless
	// Options.KeepPlans), so each plan can be re-audited independently.
	Fabric *graph.Digraph
}

// FaultResult reports a fault-tolerant online run. Packets are conserved:
// Total = Delivered + Dropped + SurvivedRedundant + whatever is still
// backlogged when the run ends.
type FaultResult struct {
	Epochs    []FaultEpochStat
	Delivered int
	Dropped   int // packets abandoned as unreachable across the whole run
	Total     int
	Psi       int64 // Σ per-epoch plan ψ, duplicates included, in traffic.WeightScale units

	// UniqueDelivered / UniqueTotal are the redundancy-deduplicated run
	// metrics: each copy group counts once (by its best copy) toward
	// UniqueDelivered, and duplicate copies do not add to UniqueTotal.
	// Without redundancy they mirror Delivered / Total.
	UniqueDelivered int
	UniqueTotal     int

	// SurvivedRedundant totals the packets of dead copies discarded because
	// a sibling copy with a live route carried their group through the
	// failure (see FaultEpochStat.SurvivedRedundant).
	SurvivedRedundant int
	// Completion maps arrival flow IDs to the 1-based epoch in which the
	// flow's last packet was delivered (absent for flows that lost packets
	// to unreachability or never drained).
	Completion map[int]int
	// Reference is the failure-free run of the same arrivals under the
	// same options (nil when FaultOptions.SkipReference).
	Reference *Result
}

// DeliveredFraction returns Delivered / Total (0 for an empty run).
func (r *FaultResult) DeliveredFraction() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Delivered) / float64(r.Total)
}

// UniqueDeliveredFraction returns UniqueDelivered / UniqueTotal (0 for an
// empty run).
func (r *FaultResult) UniqueDeliveredFraction() float64 {
	if r.UniqueTotal == 0 {
		return 0
	}
	return float64(r.UniqueDelivered) / float64(r.UniqueTotal)
}

// Degradation returns the shortfall of the degraded run relative to the
// failure-free reference, as a fraction of the reference's delivery: 0 means
// no loss, 1 means nothing was delivered. Returns 0 when the reference was
// skipped or delivered nothing.
func (r *FaultResult) Degradation() float64 {
	if r.Reference == nil || r.Reference.Delivered == 0 {
		return 0
	}
	d := float64(r.Reference.Delivered-r.Delivered) / float64(r.Reference.Delivered)
	if d < 0 {
		return 0
	}
	return d
}

// RunFaulty schedules the arrivals over successive epochs while the fabric
// degrades and recovers according to trace. At every epoch boundary the
// controller:
//
//  1. snapshots the surviving fabric (links and nodes up at the boundary
//     slot, per the trace);
//  2. admits newly arrived flows and merges them with the backlog carried
//     from previous epochs — in-flight packets continue from their current
//     positions in the network;
//  3. repairs traffic broken by failures: a flow all of whose candidate
//     routes died is rerouted onto a BFS shortest surviving path from its
//     current position, and flows with no surviving path (source or
//     destination unreachable) are dropped — the only packets ever given
//     up on;
//  4. plans the epoch with the Octopus scheduler on the surviving fabric,
//     with the trace's delta jitter for the epoch added to Δ; and
//  5. audits the plan with verify.Schedule against the surviving fabric —
//     a configuration that would activate a failed link fails the run.
//
// The run is deterministic given (arrivals, trace, options). Unless
// FaultOptions.SkipReference is set, a failure-free reference run of the
// same arrivals is computed so every epoch's delivery can be compared
// against the fabric-intact baseline.
func RunFaulty(g *graph.Digraph, arrivals []Arrival, trace *fault.Trace, opt FaultOptions) (*FaultResult, error) {
	return runFaulty(g, arrivals, trace, opt, nil, true)
}

// runFaulty is the shared fault-tolerant loop behind RunFaulty (red nil,
// reactive true) and RunRedundantFaulty. With a non-empty redundancy map,
// dead copies whose group keeps a live copy are discarded instead of
// repaired, and the Unique* metrics deduplicate delivery per group; with
// reactive false, epoch-boundary BFS repair is disabled and route-less
// flows are dropped outright.
func runFaulty(g *graph.Digraph, arrivals []Arrival, trace *fault.Trace, opt FaultOptions, red *traffic.Redundancy, reactive bool) (*FaultResult, error) {
	if opt.Core.Window <= 0 {
		return nil, errors.New("online: Core.Window must be positive")
	}
	if err := trace.Validate(g); err != nil {
		return nil, err
	}
	seen := make(map[int]bool, len(arrivals))
	arrivalSrc := make(map[int]int, len(arrivals))
	total, uniqueTotal := 0, 0
	for _, a := range arrivals {
		if a.At < 0 {
			return nil, fmt.Errorf("online: flow %d has negative arrival %d", a.Flow.ID, a.At)
		}
		if seen[a.Flow.ID] {
			return nil, fmt.Errorf("online: duplicate arrival flow ID %d", a.Flow.ID)
		}
		seen[a.Flow.ID] = true
		arrivalSrc[a.Flow.ID] = a.Flow.Src
		total += a.Flow.Size
		if !red.Duplicate(a.Flow.ID) {
			uniqueTotal += a.Flow.Size
		}
	}
	var ref *Result
	if !opt.SkipReference {
		// The reference run is an internal baseline, not part of the
		// observed run: detach the observer so its metrics and trace
		// reflect only the degraded schedule.
		refOpt := opt.Options
		refOpt.Core.Obs = nil
		var err error
		ref, err = Run(g, arrivals, refOpt)
		if err != nil {
			return nil, fmt.Errorf("online: failure-free reference run: %w", err)
		}
	}

	queue := append([]Arrival(nil), arrivals...)
	sort.SliceStable(queue, func(i, j int) bool { return queue[i].At < queue[j].At })

	maxEpochs := opt.MaxEpochs
	if maxEpochs == 0 {
		maxEpochs = 16
		for _, a := range queue {
			maxEpochs += a.Flow.Size * traffic.MaxRouteLen
		}
	}

	res := &FaultResult{Total: total, UniqueTotal: uniqueTotal, Completion: make(map[int]int), Reference: ref}
	backlog := &traffic.Load{}
	origin := make(map[int]int)      // backlog flow ID -> arrival flow ID
	outstanding := make(map[int]int) // arrival flow ID -> undelivered packets
	deliveredBy := make(map[int]int) // arrival flow ID -> delivered packets so far
	members := red.Members()         // group primary -> member arrival IDs
	uniquePrev := 0                  // unique delivered through the previous epoch
	cur := trace.Cursor()
	nextArrival := 0
	nextID := 0

	for epoch := 0; epoch < maxEpochs; epoch++ {
		boundary := epoch * opt.Core.Window
		cur.AdvanceTo(boundary)
		arrivedPkts := 0
		for nextArrival < len(queue) && queue[nextArrival].At <= boundary {
			a := queue[nextArrival]
			f := a.Flow
			origin[nextID] = f.ID
			outstanding[f.ID] = f.Size
			f.ID = nextID
			nextID++
			backlog.Flows = append(backlog.Flows, f)
			arrivedPkts += f.Size
			nextArrival++
		}

		fabric := cur.SurvivingOf(g)
		stat := FaultEpochStat{
			EpochStat:    EpochStat{Epoch: epoch, Arrived: arrivedPkts},
			FailedLinks:  cur.FailedLinks(),
			FailedNodes:  cur.FailedNodes(),
			RefDelivered: refDelivered(ref, epoch),
		}
		repairBacklog(fabric, backlog, origin, arrivalSrc, &stat, red, reactive)
		res.Dropped += stat.Dropped
		res.SurvivedRedundant += stat.SurvivedRedundant
		observeRepair(opt.Core.Obs, &stat)

		if len(backlog.Flows) == 0 {
			if nextArrival == len(queue) {
				// Drained (or dropped) and no more arrivals. A boundary
				// that still repaired or gave up on packets is recorded;
				// a plain empty boundary is not an epoch.
				if stat.Dropped > 0 || stat.SurvivedRedundant > 0 || stat.Rerouted > 0 {
					res.Epochs = append(res.Epochs, stat)
				}
				break
			}
			res.Epochs = append(res.Epochs, stat)
			continue // idle epoch waiting for arrivals
		}

		// The trace's jitter stretches this epoch's reconfiguration delay;
		// a jitter so large that no configuration fits idles the epoch.
		coreOpt := opt.Core
		coreOpt.Delta = opt.Core.Delta + trace.Jitter(epoch)
		if coreOpt.Delta >= coreOpt.Window {
			stat.Backlog = backlog.TotalPackets()
			res.Epochs = append(res.Epochs, stat)
			continue
		}

		s, err := core.New(fabric, backlog, coreOpt)
		if err != nil {
			return nil, err
		}
		sres, err := s.Run()
		if err != nil {
			return nil, err
		}
		if err := auditEpoch(fabric, backlog, sres, coreOpt, epoch); err != nil {
			return nil, err
		}
		pending := s.PendingByFlow()
		for i := range backlog.Flows {
			f := &backlog.Flows[i]
			delivered := f.Size - pending[f.ID]
			if delivered == 0 {
				continue
			}
			orig := origin[f.ID]
			outstanding[orig] -= delivered
			deliveredBy[orig] += delivered
			if outstanding[orig] == 0 {
				res.Completion[orig] = epoch + 1
			}
		}
		residual, remap := s.ResidualLoadMap()
		newOrigin := make(map[int]int, len(remap))
		maxNew := -1
		for newID, oldID := range remap {
			newOrigin[newID] = origin[oldID]
			if newID > maxNew {
				maxNew = newID
			}
		}
		res.Delivered += sres.Delivered
		res.Psi += sres.Psi
		uniqueNow := uniqueDelivered(deliveredBy, red, members)
		stat.UniqueDelivered = uniqueNow - uniquePrev
		uniquePrev = uniqueNow
		stat.Offered = sres.TotalPackets
		stat.Delivered = sres.Delivered
		stat.Backlog = sres.Pending
		observeEpoch(opt.Core.Obs, &stat.EpochStat, len(sres.Schedule.Configs))
		if opt.KeepPlans {
			stat.Plan = sres
			stat.Load = backlog.Clone()
			stat.Fabric = fabric
		}
		res.Epochs = append(res.Epochs, stat)
		backlog = residual
		origin = newOrigin
		nextID = maxNew + 1
	}
	res.UniqueDelivered = uniquePrev
	return res, nil
}

// uniqueDelivered deduplicates cumulative per-arrival delivery counts:
// ungrouped flows count their own packets, and each redundancy group counts
// its best copy once.
func uniqueDelivered(deliveredBy map[int]int, red *traffic.Redundancy, members map[int][]int) int {
	unique := 0
	for id, d := range deliveredBy {
		if _, ok := red.GroupOf(id); !ok {
			unique += d
		}
	}
	for _, ids := range members {
		best := 0
		for _, id := range ids {
			if d := deliveredBy[id]; d > best {
				best = d
			}
		}
		unique += best
	}
	return unique
}

// observeRepair records an epoch boundary's fault-repair outcome: the
// degradation counters always accumulate; the "online.repair" trace event
// fires only at boundaries where failures were visible or repairs happened,
// so failure-free epochs stay silent in the trace.
func observeRepair(o *obs.Observer, stat *FaultEpochStat) {
	if !o.Enabled() {
		return
	}
	o.Counter("octopus_online_rerouted_total").Add(int64(stat.Rerouted))
	o.Counter("octopus_online_stranded_requeued_total").Add(int64(stat.Stranded))
	o.Counter("octopus_online_dropped_total").Add(int64(stat.Dropped))
	if stat.FailedLinks == 0 && stat.FailedNodes == 0 &&
		stat.Rerouted == 0 && stat.Stranded == 0 && stat.Dropped == 0 {
		return
	}
	o.Tracer().Emit("online.repair",
		obs.I("epoch", int64(stat.Epoch)),
		obs.I("failed_links", int64(stat.FailedLinks)),
		obs.I("failed_nodes", int64(stat.FailedNodes)),
		obs.I("rerouted", int64(stat.Rerouted)),
		obs.I("stranded", int64(stat.Stranded)),
		obs.I("dropped", int64(stat.Dropped)),
	)
}

// repairBacklog rewrites the backlog in place against the surviving fabric:
// flows keep the candidate routes that survived; flows whose every route
// died are discarded when a sibling copy of their redundancy group still
// has a live route (proactive redundancy absorbing the failure), otherwise
// rerouted onto a BFS shortest surviving path from their current position
// (reactive repair, when enabled); flows with no surviving path are
// dropped. Degradation counts accumulate onto stat.
func repairBacklog(fabric *graph.Digraph, backlog *traffic.Load, origin, arrivalSrc map[int]int, stat *FaultEpochStat, red *traffic.Redundancy, reactive bool) {
	// Pass 1: which redundancy groups still have a copy with a live route.
	// Computed before any repair, so reroutes never count as redundancy.
	var groupLive map[int]bool
	if !red.Empty() {
		groupLive = make(map[int]bool)
		for i := range backlog.Flows {
			f := &backlog.Flows[i]
			p, ok := red.GroupOf(origin[f.ID])
			if !ok || groupLive[p] {
				continue
			}
			for _, r := range f.Routes {
				if fabric.IsRoute(r) {
					groupLive[p] = true
					break
				}
			}
		}
	}
	kept := backlog.Flows[:0]
	for i := range backlog.Flows {
		f := backlog.Flows[i]
		alive := f.Routes[:0:0]
		for _, r := range f.Routes {
			if fabric.IsRoute(r) {
				alive = append(alive, r)
			}
		}
		switch {
		case len(alive) == len(f.Routes):
			// Fully intact: nothing to do.
		case len(alive) > 0:
			// Some candidates died; the survivors carry the flow.
			f.Routes = alive
		default:
			if p, ok := red.GroupOf(origin[f.ID]); ok && groupLive[p] {
				// A sibling copy survives with a live route: the dead
				// copy's packets are redundant, not lost.
				stat.SurvivedRedundant += f.Size
				continue
			}
			if !reactive {
				stat.Dropped += f.Size
				continue
			}
			r, ok := traffic.ShortestRoute(fabric, f.Src, f.Dst)
			if !ok {
				stat.Dropped += f.Size
				continue
			}
			if f.WeightHops > 0 && r.Hops() > f.WeightHops {
				// Keep the weight override consistent with the longer
				// repaired route (weights may only get smaller).
				f.WeightHops = r.Hops()
			}
			f.Routes = []traffic.Route{r}
			stat.Rerouted += f.Size
			if f.Src != arrivalSrc[origin[f.ID]] {
				stat.Stranded += f.Size
			}
		}
		kept = append(kept, f)
	}
	backlog.Flows = kept
}

// auditEpoch validates the epoch's plan against the fabric it was planned
// for, independently of the scheduler's own bookkeeping. For plain plans the
// replayed delivery must match the plan's claim exactly; Octopus+ and
// chained-benefit plans keep bookkeeping a forward replay cannot reproduce,
// so only the feasibility invariants are enforced for them.
func auditEpoch(fabric *graph.Digraph, load *traffic.Load, plan *core.Result, coreOpt core.Options, epoch int) error {
	vopt := verify.Options{
		Window:    coreOpt.Window,
		Ports:     coreOpt.Ports,
		MultiHop:  coreOpt.MultiHop,
		Epsilon64: coreOpt.Epsilon64,
	}
	if !coreOpt.MultiRoute && !coreOpt.MultiHop {
		vopt.Claim = &verify.Claim{Delivered: plan.Delivered, Hops: plan.Hops, Psi: plan.Psi}
	}
	if _, err := verify.Schedule(fabric, load, plan.Schedule, vopt); err != nil {
		return fmt.Errorf("online: epoch %d plan failed verification against the surviving fabric: %w", epoch, err)
	}
	return nil
}

func refDelivered(ref *Result, epoch int) int {
	if ref == nil {
		return -1
	}
	if epoch < len(ref.Epochs) {
		return ref.Epochs[epoch].Delivered
	}
	return 0
}
