package online

import (
	"errors"
	"fmt"

	"octopus/internal/engine"
	"octopus/internal/fault"
	"octopus/internal/graph"
	"octopus/internal/traffic"
)

// FaultOptions configures a fault-tolerant online run.
type FaultOptions struct {
	Options

	// SkipReference skips the failure-free reference run, leaving
	// FaultResult.Reference nil and every RefDelivered at -1. The reference
	// costs a second full online run; skip it when only the degraded
	// numbers matter.
	SkipReference bool
}

// FaultEpochStat extends EpochStat with the epoch's degradation accounting.
type FaultEpochStat = engine.FaultEpochStat

// FaultResult reports a fault-tolerant online run. Packets are conserved:
// Total = Delivered + Dropped + SurvivedRedundant + whatever is still
// backlogged when the run ends.
type FaultResult struct {
	Epochs    []FaultEpochStat
	Delivered int
	Dropped   int // packets abandoned as unreachable across the whole run
	Total     int
	Psi       int64 // Σ per-epoch plan ψ, duplicates included, in traffic.WeightScale units

	// UniqueDelivered / UniqueTotal are the redundancy-deduplicated run
	// metrics: each copy group counts once (by its best copy) toward
	// UniqueDelivered, and duplicate copies do not add to UniqueTotal.
	// Without redundancy they mirror Delivered / Total.
	UniqueDelivered int
	UniqueTotal     int

	// SurvivedRedundant totals the packets of dead copies discarded because
	// a sibling copy with a live route carried their group through the
	// failure (see FaultEpochStat.SurvivedRedundant).
	SurvivedRedundant int
	// Completion maps arrival flow IDs to the 1-based epoch in which the
	// flow's last packet was delivered (absent for flows that lost packets
	// to unreachability or never drained).
	Completion map[int]int
	// Reference is the failure-free run of the same arrivals under the
	// same options (nil when FaultOptions.SkipReference).
	Reference *Result
}

// DeliveredFraction returns Delivered / Total (0 for an empty run).
func (r *FaultResult) DeliveredFraction() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Delivered) / float64(r.Total)
}

// UniqueDeliveredFraction returns UniqueDelivered / UniqueTotal (0 for an
// empty run).
func (r *FaultResult) UniqueDeliveredFraction() float64 {
	if r.UniqueTotal == 0 {
		return 0
	}
	return float64(r.UniqueDelivered) / float64(r.UniqueTotal)
}

// Degradation returns the shortfall of the degraded run relative to the
// failure-free reference, as a fraction of the reference's delivery: 0 means
// no loss, 1 means nothing was delivered. Returns 0 when the reference was
// skipped or delivered nothing.
func (r *FaultResult) Degradation() float64 {
	if r.Reference == nil || r.Reference.Delivered == 0 {
		return 0
	}
	d := float64(r.Reference.Delivered-r.Delivered) / float64(r.Reference.Delivered)
	if d < 0 {
		return 0
	}
	return d
}

// RunFaulty schedules the arrivals over successive epochs while the fabric
// degrades and recovers according to trace. At every epoch boundary the
// controller:
//
//  1. snapshots the surviving fabric (links and nodes up at the boundary
//     slot, per the trace);
//  2. admits newly arrived flows and merges them with the backlog carried
//     from previous epochs — in-flight packets continue from their current
//     positions in the network;
//  3. repairs traffic broken by failures: a flow all of whose candidate
//     routes died is rerouted onto a BFS shortest surviving path from its
//     current position, and flows with no surviving path (source or
//     destination unreachable) are dropped — the only packets ever given
//     up on;
//  4. plans the epoch with the Octopus scheduler on the surviving fabric,
//     with the trace's delta jitter for the epoch added to Δ; and
//  5. audits the plan with verify.Schedule against the surviving fabric —
//     a configuration that would activate a failed link fails the run.
//
// The run is deterministic given (arrivals, trace, options). Unless
// FaultOptions.SkipReference is set, a failure-free reference run of the
// same arrivals is computed so every epoch's delivery can be compared
// against the fabric-intact baseline.
func RunFaulty(g *graph.Digraph, arrivals []Arrival, trace *fault.Trace, opt FaultOptions) (*FaultResult, error) {
	return runFaulty(g, arrivals, trace, opt, nil, true)
}

// runFaulty is the shared fault-tolerant driver behind RunFaulty (red nil,
// reactive true) and RunRedundantFaulty. With a non-empty redundancy map,
// dead copies whose group keeps a live copy are discarded instead of
// repaired, and the Unique* metrics deduplicate delivery per group; with
// reactive false, epoch-boundary BFS repair is disabled and route-less
// flows are dropped outright. The loop itself lives in engine.Pipeline;
// this driver feeds it the sorted arrival batch, stamps each plan's
// RefDelivered from the reference run, and folds the per-epoch stats into
// a FaultResult.
func runFaulty(g *graph.Digraph, arrivals []Arrival, trace *fault.Trace, opt FaultOptions, red *traffic.Redundancy, reactive bool) (*FaultResult, error) {
	if opt.Core.Window <= 0 {
		return nil, errors.New("online: Core.Window must be positive")
	}
	if err := trace.Validate(g); err != nil {
		return nil, err
	}
	total, uniqueTotal, err := validateArrivals(arrivals, red)
	if err != nil {
		return nil, err
	}
	var ref *Result
	if !opt.SkipReference {
		// The reference run is an internal baseline, not part of the
		// observed run: detach the observer and flight recorder so their
		// metrics and journals reflect only the degraded schedule.
		refOpt := opt.Options
		refOpt.Core.Obs = nil
		refOpt.Flight = nil
		ref, err = Run(g, arrivals, refOpt)
		if err != nil {
			return nil, fmt.Errorf("online: failure-free reference run: %w", err)
		}
	}

	queue := sortedQueue(arrivals)
	p, err := engine.New(g, engine.Config{
		Core:      opt.Core,
		KeepPlans: opt.KeepPlans,
		Trace:     trace,
		Repair:    true,
		Reactive:  reactive,
		Red:       red,
		Audit:     true,
		Flight:    opt.Flight,
	})
	if err != nil {
		return nil, err
	}
	if err := p.SubmitAll(queue); err != nil {
		return nil, err
	}

	res := &FaultResult{Total: total, UniqueTotal: uniqueTotal, Reference: ref}
	maxEpochs := epochCap(opt.MaxEpochs, queue)
	for epoch := 0; epoch < maxEpochs; epoch++ {
		plan, err := p.PlanNext()
		if err != nil {
			return nil, err
		}
		plan.Stat.RefDelivered = refDelivered(ref, epoch)
		stat, err := p.Commit(plan)
		if err != nil {
			return nil, err
		}
		res.Dropped += stat.Dropped
		res.SurvivedRedundant += stat.SurvivedRedundant
		if plan.Kind == engine.PlanScheduled {
			res.Delivered += stat.Delivered
			res.Psi += stat.Psi
		}
		if plan.Kind == engine.PlanDrained {
			// Drained (or dropped) and no more arrivals. A boundary that
			// still repaired or gave up on packets is recorded; a plain
			// empty boundary is not an epoch.
			if plan.Record {
				res.Epochs = append(res.Epochs, *stat)
			}
			break
		}
		res.Epochs = append(res.Epochs, *stat)
	}
	res.UniqueDelivered = p.Totals().UniqueDelivered
	res.Completion = p.Completion()
	return res, nil
}

func refDelivered(ref *Result, epoch int) int {
	if ref == nil {
		return -1
	}
	if epoch < len(ref.Epochs) {
		return ref.Epochs[epoch].Delivered
	}
	return 0
}
