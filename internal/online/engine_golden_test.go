package online

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"octopus/internal/core"
	"octopus/internal/fault"
	"octopus/internal/graph"
	"octopus/internal/traffic"
	"octopus/internal/verify"
)

// updateEngineGolden regenerates testdata/engine_golden.json from the
// current implementation. The file was captured from the pre-engine batch
// loops (PR 8 extracted internal/engine); regenerating it is only
// legitimate for an intended behavior change of the online layer.
var updateEngineGolden = flag.Bool("update-engine-golden", false, "rewrite the engine-extraction golden file")

// goldEpoch is one epoch's full stat fingerprint, including a hash of the
// planned schedule's JSON bytes (empty when the epoch planned nothing).
type goldEpoch struct {
	Epoch             int    `json:"epoch"`
	Arrived           int    `json:"arrived"`
	Offered           int    `json:"offered"`
	Delivered         int    `json:"delivered"`
	Backlog           int    `json:"backlog"`
	FailedLinks       int    `json:"failed_links"`
	FailedNodes       int    `json:"failed_nodes"`
	Rerouted          int    `json:"rerouted"`
	Stranded          int    `json:"stranded"`
	Dropped           int    `json:"dropped"`
	SurvivedRedundant int    `json:"survived_redundant"`
	UniqueDelivered   int    `json:"unique_delivered"`
	RefDelivered      int    `json:"ref_delivered"`
	SchedFP           string `json:"sched_fp,omitempty"`
}

// goldRun fingerprints one full online run.
type goldRun struct {
	Delivered         int         `json:"delivered"`
	Total             int         `json:"total"`
	Dropped           int         `json:"dropped"`
	Psi               int64       `json:"psi"`
	UniqueDelivered   int         `json:"unique_delivered"`
	UniqueTotal       int         `json:"unique_total"`
	SurvivedRedundant int         `json:"survived_redundant"`
	RefDelivered      int         `json:"ref_delivered"`
	Completion        map[int]int `json:"completion"`
	Epochs            []goldEpoch `json:"epochs"`
}

func schedFP(t *testing.T, plan *core.Result) string {
	t.Helper()
	if plan == nil || plan.Schedule == nil {
		return ""
	}
	var buf bytes.Buffer
	if err := plan.Schedule.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:8])
}

func goldFromResult(t *testing.T, res *Result) goldRun {
	t.Helper()
	g := goldRun{
		Delivered:    res.Delivered,
		Total:        res.Total,
		Completion:   res.Completion,
		RefDelivered: -1,
	}
	for _, ep := range res.Epochs {
		g.Epochs = append(g.Epochs, goldEpoch{
			Epoch:        ep.Epoch,
			Arrived:      ep.Arrived,
			Offered:      ep.Offered,
			Delivered:    ep.Delivered,
			Backlog:      ep.Backlog,
			RefDelivered: -1,
			SchedFP:      schedFP(t, ep.Plan),
		})
	}
	return g
}

func goldFromFaultResult(t *testing.T, res *FaultResult) goldRun {
	t.Helper()
	g := goldRun{
		Delivered:         res.Delivered,
		Total:             res.Total,
		Dropped:           res.Dropped,
		Psi:               res.Psi,
		UniqueDelivered:   res.UniqueDelivered,
		UniqueTotal:       res.UniqueTotal,
		SurvivedRedundant: res.SurvivedRedundant,
		Completion:        res.Completion,
		RefDelivered:      -1,
	}
	if res.Reference != nil {
		g.RefDelivered = res.Reference.Delivered
	}
	for _, ep := range res.Epochs {
		g.Epochs = append(g.Epochs, goldEpoch{
			Epoch:             ep.Epoch,
			Arrived:           ep.Arrived,
			Offered:           ep.Offered,
			Delivered:         ep.Delivered,
			Backlog:           ep.Backlog,
			FailedLinks:       ep.FailedLinks,
			FailedNodes:       ep.FailedNodes,
			Rerouted:          ep.Rerouted,
			Stranded:          ep.Stranded,
			Dropped:           ep.Dropped,
			SurvivedRedundant: ep.SurvivedRedundant,
			UniqueDelivered:   ep.UniqueDelivered,
			RefDelivered:      ep.RefDelivered,
			SchedFP:           schedFP(t, ep.Plan),
		})
	}
	return g
}

// TestEngineExtractionGolden pins Run, RunFaulty, and RunRedundantFaulty
// bit-identical across the internal/engine extraction: every per-epoch
// stat, every planned schedule (by hash), every completion map, and every
// run total must match the fingerprints captured from the pre-engine
// monolithic loops.
func TestEngineExtractionGolden(t *testing.T) {
	runs := map[string]goldRun{}
	for _, seed := range []int64{3, 11, 27, 42} {
		rng := rand.New(rand.NewSource(seed))
		inst := verify.RandomInstance(rng)
		if len(inst.Load.Flows) == 0 {
			continue
		}
		var arr []Arrival
		for i, f := range inst.Load.Flows {
			f.Routes = f.Routes[:1]
			arr = append(arr, Arrival{Flow: f, At: i * inst.Window / 2})
		}
		tr := randomTrace(inst.G, rng, 3*inst.Window)
		opt := Options{
			Core:      core.Options{Window: inst.Window, Delta: inst.Delta},
			KeepPlans: true,
		}

		plain, err := Run(inst.G, arr, opt)
		if err != nil {
			t.Fatalf("seed %d: Run: %v", seed, err)
		}
		runs[key(seed, "plain")] = goldFromResult(t, plain)

		faulty, err := RunFaulty(inst.G, arr, tr, FaultOptions{Options: opt})
		if err != nil {
			t.Fatalf("seed %d: RunFaulty: %v", seed, err)
		}
		runs[key(seed, "faulty")] = goldFromFaultResult(t, faulty)

		// Redundancy-expanded arrivals over the same trace, with and
		// without the reactive repair arm.
		red := inst.Load.Clone()
		traffic.MarkCritical(red, 0.5)
		expanded, groups := traffic.ExpandRedundant(traffic.Redundant(inst.G, red, 2, 2.0))
		var rarr []Arrival
		for i, f := range expanded.Flows {
			rarr = append(rarr, Arrival{Flow: f, At: i * inst.Window / 3})
		}
		for _, mode := range []struct {
			name       string
			noReactive bool
		}{{"redundant", false}, {"proactive", true}} {
			res, err := RunRedundantFaulty(inst.G, rarr, tr, RedundantFaultOptions{
				FaultOptions: FaultOptions{Options: opt, SkipReference: true},
				Redundancy:   groups,
				NoReactive:   mode.noReactive,
			})
			if err != nil {
				t.Fatalf("seed %d: RunRedundantFaulty (%s): %v", seed, mode.name, err)
			}
			runs[key(seed, mode.name)] = goldFromFaultResult(t, res)
		}
	}

	// Crafted scenarios covering the repair paths the random traces rarely
	// hit: reroute around a dead link, stranded in-flight requeue, drop of
	// an unreachable destination, a jitter-idled epoch, and redundancy
	// copies absorbing a node failure.
	for name, run := range craftedScenarios(t) {
		runs["crafted-"+name] = run
	}

	got, err := json.MarshalIndent(runs, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	golden := filepath.Join("testdata", "engine_golden.json")
	if *updateEngineGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("online runs drifted from the pre-engine golden fingerprints (-update-engine-golden only on an intended change):\n--- want\n%s--- got\n%s",
			clipGold(want), clipGold(got))
	}
}

// craftedScenarios runs the deterministic repair-path scenarios under
// KeepPlans and fingerprints each.
func craftedScenarios(t *testing.T) map[string]goldRun {
	t.Helper()
	out := map[string]goldRun{}
	keep := func(w, d int) Options {
		return Options{Core: core.Options{Window: w, Delta: d}, KeepPlans: true}
	}

	// Reroute around a failed link, with a second flow arriving late.
	g := graph.Complete(4)
	arr := []Arrival{
		{Flow: traffic.Flow{ID: 1, Size: 8, Src: 0, Dst: 1, Routes: []traffic.Route{{0, 1}}}, At: 0},
		{Flow: traffic.Flow{ID: 2, Size: 3, Src: 2, Dst: 3, Routes: []traffic.Route{{2, 3}}}, At: 250},
	}
	tr := &fault.Trace{Events: []fault.Event{
		{At: 0, Kind: fault.LinkDown, From: 0, To: 1},
		{At: 300, Kind: fault.LinkUp, From: 0, To: 1},
	}}
	res, err := RunFaulty(g, arr, tr, FaultOptions{Options: keep(200, 5)})
	if err != nil {
		t.Fatal(err)
	}
	out["reroute"] = goldFromFaultResult(t, res)

	// Stranded in-flight requeue: one configuration per window, onward
	// link dies after the first hop.
	g = graph.Complete(3)
	arr = []Arrival{{Flow: traffic.Flow{ID: 9, Size: 5, Src: 0, Dst: 2, Routes: []traffic.Route{{0, 1, 2}}}, At: 0}}
	tr = &fault.Trace{Events: []fault.Event{{At: 12, Kind: fault.LinkDown, From: 1, To: 2}}}
	res, err = RunFaulty(g, arr, tr, FaultOptions{Options: keep(12, 5)})
	if err != nil {
		t.Fatal(err)
	}
	out["stranded"] = goldFromFaultResult(t, res)

	// Unreachable destination: node 3 down for the whole run.
	g = graph.Complete(4)
	arr = []Arrival{
		{Flow: traffic.Flow{ID: 1, Size: 6, Src: 0, Dst: 3, Routes: []traffic.Route{{0, 3}}}, At: 0},
		{Flow: traffic.Flow{ID: 2, Size: 4, Src: 1, Dst: 2, Routes: []traffic.Route{{1, 2}}}, At: 0},
	}
	tr = &fault.Trace{Events: []fault.Event{{At: 0, Kind: fault.NodeDown, Node: 3}}}
	res, err = RunFaulty(g, arr, tr, FaultOptions{Options: keep(100, 5)})
	if err != nil {
		t.Fatal(err)
	}
	out["drop"] = goldFromFaultResult(t, res)

	// Jitter idles epoch 0; traffic delivers afterwards.
	g = graph.Complete(3)
	arr = []Arrival{{Flow: traffic.Flow{ID: 1, Size: 4, Src: 0, Dst: 1, Routes: []traffic.Route{{0, 1}}}, At: 0}}
	tr = &fault.Trace{DeltaJitter: []int{1000}}
	res, err = RunFaulty(g, arr, tr, FaultOptions{Options: keep(50, 5)})
	if err != nil {
		t.Fatal(err)
	}
	out["jitter"] = goldFromFaultResult(t, res)

	// Redundant copies absorbing a correlated node burst: two disjoint
	// copies of a critical flow, the primary's relay node dies at slot 0.
	g = graph.Complete(5)
	load := &traffic.Load{Flows: []traffic.Flow{
		{ID: 0, Size: 6, Src: 0, Dst: 4, Routes: []traffic.Route{{0, 1, 4}}, Critical: true},
		{ID: 1, Size: 2, Src: 2, Dst: 3, Routes: []traffic.Route{{2, 3}}},
	}}
	expanded, groups := traffic.ExpandRedundant(traffic.Redundant(g, load, 2, 3.0))
	var rarr []Arrival
	for _, f := range expanded.Flows {
		rarr = append(rarr, Arrival{Flow: f, At: 0})
	}
	tr = fault.CorrelatedTrace(g, []int{1}, 0, 100, 60)
	res, err = RunRedundantFaulty(g, rarr, tr, RedundantFaultOptions{
		FaultOptions: FaultOptions{Options: keep(40, 4), SkipReference: true},
		Redundancy:   groups,
		NoReactive:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	out["survive"] = goldFromFaultResult(t, res)
	return out
}

func key(seed int64, mode string) string {
	return "seed" + string(rune('0'+seed/10)) + string(rune('0'+seed%10)) + "-" + mode
}

func clipGold(b []byte) string {
	const n = 3000
	if len(b) <= n {
		return string(b)
	}
	return string(b[:n]) + "...\n"
}
