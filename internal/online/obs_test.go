package online

import (
	"bytes"
	"reflect"
	"testing"

	"octopus/internal/core"
	"octopus/internal/fault"
	"octopus/internal/graph"
	"octopus/internal/obs"
	"octopus/internal/traffic"
)

// TestFaultyObsEquivalence checks the read-only contract through the
// fault-tolerant online pipeline: RunFaulty with a live Observer must
// reproduce the uninstrumented run epoch for epoch, including the
// failure-free reference (which deliberately runs with a detached observer
// so its counters do not pollute the degraded run's metrics).
func TestFaultyObsEquivalence(t *testing.T) {
	g := graph.Complete(5)
	arr := []Arrival{
		{Flow: traffic.Flow{ID: 1, Size: 7, Src: 0, Dst: 2, Routes: []traffic.Route{{0, 1, 2}}}, At: 0},
		{Flow: traffic.Flow{ID: 2, Size: 4, Src: 3, Dst: 4, Routes: []traffic.Route{{3, 4}}}, At: 10},
	}
	tr := &fault.Trace{Events: []fault.Event{
		{At: 12, Kind: fault.LinkDown, From: 1, To: 2},
		{At: 40, Kind: fault.LinkUp, From: 1, To: 2},
	}}
	opt := FaultOptions{Options: Options{Core: core.Options{Window: 12, Delta: 3}}}
	plain, err := RunFaulty(g, arr, tr, opt)
	if err != nil {
		t.Fatal(err)
	}

	var trace bytes.Buffer
	reg := obs.NewRegistry()
	opt.Core.Obs = &obs.Observer{Metrics: reg, Trace: obs.NewTracer(&trace)}
	inst, err := RunFaulty(g, arr, tr, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := opt.Core.Obs.Trace.Err(); err != nil {
		t.Fatalf("tracer error: %v", err)
	}

	if inst.Delivered != plain.Delivered || inst.Dropped != plain.Dropped || inst.Total != plain.Total {
		t.Fatalf("totals diverge: %d/%d dropped %d vs %d/%d dropped %d",
			inst.Delivered, inst.Total, inst.Dropped, plain.Delivered, plain.Total, plain.Dropped)
	}
	if !reflect.DeepEqual(inst.Epochs, plain.Epochs) {
		t.Fatalf("epoch stats diverge under instrumentation:\n%+v\n%+v", inst.Epochs, plain.Epochs)
	}
	if !reflect.DeepEqual(inst.Completion, plain.Completion) {
		t.Fatalf("completions diverge: %v vs %v", inst.Completion, plain.Completion)
	}
	if (inst.Reference == nil) != (plain.Reference == nil) {
		t.Fatal("reference presence changed under instrumentation")
	}
	if inst.Reference != nil && inst.Reference.Delivered != plain.Reference.Delivered {
		t.Fatalf("reference diverges: %d vs %d", inst.Reference.Delivered, plain.Reference.Delivered)
	}

	// The online layer's own counters must reflect only the degraded run:
	// epochs equals the degraded epoch count, not double it (the reference
	// run is uninstrumented by construction).
	if got, want := reg.Value("octopus_online_epochs_total"), int64(len(inst.Epochs)); got != want {
		t.Errorf("octopus_online_epochs_total = %d, want %d (reference run must stay uninstrumented)", got, want)
	}
	if got := reg.Value("octopus_online_delivered_total"); got != int64(inst.Delivered) {
		t.Errorf("octopus_online_delivered_total = %d, want %d", got, inst.Delivered)
	}
	if got := reg.Value("octopus_online_rerouted_total"); got <= 0 {
		t.Errorf("octopus_online_rerouted_total = %d, want > 0 (the trace kills flow 1's only route)", got)
	}
}
