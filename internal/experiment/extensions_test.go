package experiment

import "testing"

func TestExtensionIDs(t *testing.T) {
	ids := ExtensionIDs()
	want := []string{"ext-adaptive", "ext-backtrack", "ext-buffers", "ext-eclipsepp", "ext-epsilon", "ext-makespan", "ext-ports", "ext-redundancy", "ext-solstice"}
	if len(ids) != len(want) {
		t.Fatalf("ids = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ids = %v", ids)
		}
	}
}

func TestExtensionsRunAtTinyScale(t *testing.T) {
	sc := tiny()
	for _, id := range ExtensionIDs() {
		tab, err := Run(id, sc)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tab.Rows) == 0 {
			t.Fatalf("%s: empty table", id)
		}
		for _, row := range tab.Rows {
			if len(row.Values) != len(tab.Series) {
				t.Fatalf("%s: row width mismatch", id)
			}
			for _, v := range row.Values {
				if v < 0 {
					t.Fatalf("%s: negative value %f", id, v)
				}
			}
		}
	}
}

func TestExtPortsMonotone(t *testing.T) {
	sc := tiny()
	sc.Instances = 2
	tab, err := ExtPorts(sc)
	if err != nil {
		t.Fatal(err)
	}
	// More ports never hurt delivered packets.
	for i := 1; i < len(tab.Rows); i++ {
		if tab.Rows[i].Values[0] < tab.Rows[i-1].Values[0]-0.001 {
			t.Fatalf("delivered decreased with more ports: %v", tab.Rows)
		}
	}
}

func TestExtMakespanAboveLowerBound(t *testing.T) {
	tab, err := ExtMakespan(tiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if row.Values[0] < row.Values[1] {
			t.Fatalf("makespan %f below lower bound %f", row.Values[0], row.Values[1])
		}
	}
}

func TestExtBacktrackOrdering(t *testing.T) {
	sc := tiny()
	sc.Nodes = 10
	sc.Window = 300
	tab, err := ExtBacktrack(sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		plus, rnd := row.Values[0], row.Values[2]
		if plus <= rnd {
			t.Fatalf("delta=%v: Octopus+ %.2f not above Octopus-random %.2f", row.X, plus, rnd)
		}
	}
}
