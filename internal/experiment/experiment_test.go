package experiment

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"octopus/internal/algo"
	"octopus/internal/core"
)

// tiny returns a minimal scale so every figure runs in test time.
func tiny() Scale {
	return Scale{
		Name:          "tiny",
		Nodes:         8,
		Window:        200,
		Delta:         5,
		Instances:     2,
		Matcher:       core.MatcherExact,
		Seed:          7,
		Workers:       2,
		NodeSweep:     []int{6, 8},
		DeltaSweep:    []int{2, 8},
		SkewSweep:     []int{30, 70},
		SparsitySweep: []int{4, 8},
		HopSweep:      []int{1, 2, 3},
		TimeNodeSweep: []int{6, 10},
	}
}

func TestFigureIDs(t *testing.T) {
	ids := FigureIDs()
	if len(ids) != 16 {
		t.Fatalf("got %d figures, want 16: %v", len(ids), ids)
	}
	want := []string{"10a", "10b", "4a", "4b", "4c", "4d", "5a", "5b", "5c", "5d", "6", "7a", "7b", "8", "9a", "9b"}
	for i, id := range want {
		if ids[i] != id {
			t.Fatalf("ids = %v", ids)
		}
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if _, err := Run("nope", tiny()); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestAllFiguresRunAtTinyScale(t *testing.T) {
	sc := tiny()
	for _, id := range FigureIDs() {
		tab, err := Run(id, sc)
		if err != nil {
			t.Fatalf("figure %s: %v", id, err)
		}
		if len(tab.Rows) == 0 || len(tab.Series) == 0 {
			t.Fatalf("figure %s: empty table", id)
		}
		for _, row := range tab.Rows {
			if len(row.Values) != len(tab.Series) {
				t.Fatalf("figure %s: row width mismatch", id)
			}
			for si, v := range row.Values {
				if v < 0 {
					t.Fatalf("figure %s series %s: negative value %f", id, tab.Series[si], v)
				}
				if id != "10a" && v > 100.0001 {
					t.Fatalf("figure %s series %s: percentage %f > 100", id, tab.Series[si], v)
				}
			}
		}
	}
}

func TestFig4aQualitative(t *testing.T) {
	sc := tiny()
	sc.Instances = 3
	tab, err := Fig4a(sc)
	if err != nil {
		t.Fatal(err)
	}
	// Series order: Octopus, Eclipse-Based, UB, AbsoluteUB.
	for _, row := range tab.Rows {
		oct, ecl, ub := row.Values[0], row.Values[1], row.Values[2]
		if oct <= ecl {
			t.Fatalf("n=%v: Octopus %.2f not above Eclipse-Based %.2f", row.X, oct, ecl)
		}
		if ub < 0.85*oct {
			t.Fatalf("n=%v: UB %.2f far below Octopus %.2f", row.X, ub, oct)
		}
	}
}

func TestFig8Qualitative(t *testing.T) {
	tab, err := Fig8(tiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		octDel, rotDel := row.Values[0], row.Values[1]
		octUtil, rotUtil := row.Values[2], row.Values[3]
		if octDel <= rotDel {
			t.Fatalf("delta=%v: Octopus %.2f not above RotorNet %.2f", row.X, octDel, rotDel)
		}
		if octUtil <= rotUtil {
			t.Fatalf("delta=%v: Octopus util %.2f not above RotorNet %.2f", row.X, octUtil, rotUtil)
		}
	}
}

func TestFig10aExactSlowerThanGreedy(t *testing.T) {
	sc := tiny()
	sc.TimeNodeSweep = []int{12}
	tab, err := Fig10a(sc)
	if err != nil {
		t.Fatal(err)
	}
	exact, greedy := tab.Rows[0].Values[0], tab.Rows[0].Values[1]
	if exact <= 0 || greedy <= 0 {
		t.Fatalf("non-positive timings: %f %f", exact, greedy)
	}
}

func TestDeterminism(t *testing.T) {
	sc := tiny()
	a, err := Fig4b(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig4b(sc)
	if err != nil {
		t.Fatal(err)
	}
	for r := range a.Rows {
		for c := range a.Rows[r].Values {
			if a.Rows[r].Values[c] != b.Rows[r].Values[c] {
				t.Fatalf("nondeterministic at row %d col %d: %f vs %f",
					r, c, a.Rows[r].Values[c], b.Rows[r].Values[c])
			}
		}
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{
		ID: "t", Title: "Test", XLabel: "x", YLabel: "y",
		Series: []string{"A", "BBBB"},
		Rows: []Row{
			{X: 1, Values: []float64{12.345, 6}},
			{X: 20, Values: []float64{1, 99.9}},
		},
	}
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "# t — Test") || !strings.Contains(out, "12.35") {
		t.Fatalf("render output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // 2 comment lines + header + 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// Columns align: header and rows have equal rendered width.
	if len(lines[2]) != len(lines[3]) || len(lines[3]) != len(lines[4]) {
		t.Fatalf("misaligned columns:\n%s", out)
	}
}

func TestTableCSV(t *testing.T) {
	tab := &Table{
		XLabel: "x", Series: []string{"A", "B"},
		Rows: []Row{{X: 1.5, Values: []float64{2, 3}}},
	}
	var buf bytes.Buffer
	if err := tab.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "x,A,B\n1.5,2.0000,3.0000\n"
	if buf.String() != want {
		t.Fatalf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestScalePresets(t *testing.T) {
	full, quick := Full(), Quick()
	if full.Nodes != 100 || full.Window != 10000 || full.Delta != 20 || full.Instances != 10 {
		t.Fatalf("full preset = %+v", full)
	}
	if quick.Nodes >= full.Nodes || quick.Window >= full.Window {
		t.Fatal("quick preset not smaller than full")
	}
	for _, sc := range []Scale{full, quick} {
		if len(sc.NodeSweep) == 0 || len(sc.DeltaSweep) == 0 || len(sc.SkewSweep) == 0 ||
			len(sc.SparsitySweep) == 0 || len(sc.HopSweep) == 0 || len(sc.TimeNodeSweep) == 0 {
			t.Fatalf("%s preset has empty sweeps", sc.Name)
		}
	}
}

func TestAveragePointPropagatesErrors(t *testing.T) {
	sc := tiny()
	if _, err := averagePoint(sc, 1, 1, func(rng *rand.Rand) ([]float64, error) {
		return nil, errors.New("boom")
	}); err == nil {
		t.Fatal("error not propagated")
	}
	// Wrong arity is caught.
	if _, err := averagePoint(sc, 1, 2, func(rng *rand.Rand) ([]float64, error) {
		return []float64{1}, nil
	}); err == nil {
		t.Fatal("arity mismatch not caught")
	}
	// Averaging works.
	vals, err := averagePoint(sc, 1, 1, func(rng *rand.Rand) ([]float64, error) {
		return []float64{10}, nil
	})
	if err != nil || vals[0] != 10 {
		t.Fatalf("vals=%v err=%v", vals, err)
	}
}

func TestAlgorithmNamesMatchRegistry(t *testing.T) {
	// The experiment layer dispatches by registry name; its roster IS the
	// registry listing (the cross-roster equality guarantee).
	names := AlgorithmNames()
	reg := algo.Names()
	if len(names) != len(reg) {
		t.Fatalf("experiment roster has %d names, registry %d", len(names), len(reg))
	}
	for i := range names {
		if names[i] != reg[i] {
			t.Errorf("roster[%d] = %q, registry %q", i, names[i], reg[i])
		}
	}
	// Every name the figure runners dispatch must resolve.
	for _, n := range []string{"octopus", "octopus-g", "octopus-b", "octopus-e",
		"octopus-plus", "octopus-random", "eclipse-based", "eclipse-pp",
		"solstice", "rotornet", "maxweight", "ub"} {
		if _, ok := algo.Lookup(n); !ok {
			t.Errorf("figure-dispatched algorithm %q not in registry", n)
		}
	}
}
