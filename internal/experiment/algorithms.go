package experiment

import (
	"fmt"

	"octopus/internal/algo"
	"octopus/internal/baseline"
	"octopus/internal/graph"
	"octopus/internal/traffic"
)

// metrics are the per-run measurements the figures plot. Fractions are in
// [0, 1]; the figure runners convert to percentages.
type metrics struct {
	delivered      float64 // packets delivered / offered
	utilization    float64 // packet-hops / active link-slots
	deliveredOfPsi float64 // delivered / (ψ in packet equivalents), Fig 7a
}

// params maps the scale's shared knobs onto the registry parameter set;
// figure runners overlay their sweep variable before dispatching.
func (sc Scale) params() algo.Params {
	return algo.Params{Window: sc.Window, Delta: sc.Delta, Matcher: sc.Matcher}
}

// run dispatches one registered algorithm by name and reduces its Outcome
// to the figure metrics. Every figure and extension runner goes through
// here, so the experiment layer carries no per-algorithm options mapping
// or roster of its own — internal/algo is the single source of truth.
func run(name string, g *graph.Digraph, load *traffic.Load, p algo.Params) (metrics, error) {
	a, ok := algo.Lookup(name)
	if !ok {
		return metrics{}, fmt.Errorf("experiment: unknown algorithm %q", name)
	}
	out, err := a.Run(g, load, p)
	if err != nil {
		return metrics{}, err
	}
	return metrics{
		delivered:      out.DeliveredFraction(),
		utilization:    out.Utilization(),
		deliveredOfPsi: out.DeliveredOfPsi(),
	}, nil
}

// AlgorithmNames returns the roster the experiment layer dispatches
// against — the registry listing, by construction (asserted equal to the
// other entry points' rosters in the cross-roster test).
func AlgorithmNames() []string {
	return algo.Names()
}

// absUB returns the absolute capacity upper bound as a delivered fraction.
func absUB(load *traffic.Load, window, n int) float64 {
	total := load.TotalPackets()
	if total == 0 {
		return 0
	}
	return float64(baseline.AbsoluteUpperBound(load, window, n)) / float64(total)
}
