package experiment

import (
	"octopus/internal/baseline"
	"octopus/internal/core"
	"octopus/internal/graph"
	"octopus/internal/simulate"
	"octopus/internal/traffic"
)

// metrics are the per-run measurements the figures plot. Fractions are in
// [0, 1]; the figure runners convert to percentages.
type metrics struct {
	delivered      float64 // packets delivered / offered
	utilization    float64 // packet-hops / active link-slots
	deliveredOfPsi float64 // delivered / (ψ in packet equivalents), Fig 7a
}

func fromSim(r *simulate.Result) metrics {
	return metrics{
		delivered:      r.DeliveredFraction(),
		utilization:    r.Utilization(),
		deliveredOfPsi: r.DeliveredOfPsi(),
	}
}

// runOctopus schedules with the core scheduler and measures the schedule
// with the packet-level simulator (the measurement authority for all
// single-route figures).
func runOctopus(g *graph.Digraph, load *traffic.Load, opt core.Options) (metrics, error) {
	s, err := core.New(g, load, opt)
	if err != nil {
		return metrics{}, err
	}
	res, err := s.Run()
	if err != nil {
		return metrics{}, err
	}
	sim, err := simulate.Run(g, load, res.Schedule, simulate.Options{
		Window:    opt.Window,
		Epsilon64: opt.Epsilon64,
		MultiHop:  opt.MultiHop,
		Ports:     opt.Ports,
	})
	if err != nil {
		return metrics{}, err
	}
	return fromSim(sim), nil
}

// runOctopusPlan schedules and reports the plan's own bookkeeping. Used for
// Octopus+ (whose backtracking cannot be replayed forward; the plan is
// verified by core's plan verifier instead, exercised in tests).
func runOctopusPlan(g *graph.Digraph, load *traffic.Load, opt core.Options) (metrics, error) {
	s, err := core.New(g, load, opt)
	if err != nil {
		return metrics{}, err
	}
	res, err := s.Run()
	if err != nil {
		return metrics{}, err
	}
	m := metrics{}
	if res.TotalPackets > 0 {
		m.delivered = float64(res.Delivered) / float64(res.TotalPackets)
	}
	if als := res.Schedule.ActiveLinkSlots(); als > 0 {
		m.utilization = float64(res.Hops) / float64(als)
	}
	if res.Psi > 0 {
		m.deliveredOfPsi = float64(res.Delivered) * float64(traffic.WeightScale) / float64(res.Psi)
	}
	return m, nil
}

func runEclipseBased(g *graph.Digraph, load *traffic.Load, window, delta int, matcher core.Matcher) (metrics, error) {
	sim, _, err := baseline.EclipseBased(g, load, window, delta, matcher)
	if err != nil {
		return metrics{}, err
	}
	return fromSim(sim), nil
}

func runUB(g *graph.Digraph, load *traffic.Load, window, delta int, matcher core.Matcher) (metrics, error) {
	ub, err := baseline.UpperBound(g, load, window, delta, matcher)
	if err != nil {
		return metrics{}, err
	}
	return metrics{
		delivered:      ub.DeliveredFraction(),
		utilization:    ub.Utilization(),
		deliveredOfPsi: ub.DeliveredOfPsi(),
	}, nil
}

func runRotorNet(g *graph.Digraph, load *traffic.Load, window, delta int) (metrics, error) {
	sim, _, err := baseline.RotorNet(g, load, window, delta, 0)
	if err != nil {
		return metrics{}, err
	}
	return fromSim(sim), nil
}

// absUB returns the absolute capacity upper bound as a delivered fraction.
func absUB(load *traffic.Load, window, n int) float64 {
	total := load.TotalPackets()
	if total == 0 {
		return 0
	}
	return float64(baseline.AbsoluteUpperBound(load, window, n)) / float64(total)
}
