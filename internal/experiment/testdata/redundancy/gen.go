//go:build ignore

// Regenerates the committed correlated-failure traces the ext-redundancy
// showdown replays (run from this directory: go run gen.go). The traces are
// tied to the experiment's fixed geometry — graph.ChordRing(24, 2, 5) with
// 120-slot epochs — and each burst window [100+240i, 240+240i) straddles
// exactly one epoch boundary (120, 360, 600), so the failure is visible in
// exactly one boundary snapshot and restored before the next.
package main

import (
	"fmt"
	"os"

	"octopus/internal/fault"
	"octopus/internal/graph"
)

func main() {
	g := graph.ChordRing(24, 2, 5)
	victims := [][]int{
		{3, 11, 19},
		{7, 14, 22},
		{1, 9, 16},
	}
	for i, nodes := range victims {
		tr := fault.CorrelatedTrace(g, nodes, 100, 240, 140)
		if err := tr.Validate(g); err != nil {
			fmt.Fprintf(os.Stderr, "trace %d: %v\n", i+1, err)
			os.Exit(1)
		}
		name := fmt.Sprintf("trace%d.json", i+1)
		f, err := os.Create(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := tr.WriteJSON(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d events)\n", name, len(tr.Events))
	}
}
