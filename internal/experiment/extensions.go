package experiment

import (
	"fmt"
	"math/rand"
	"sort"

	"octopus/internal/baseline"
	"octopus/internal/core"
	"octopus/internal/graph"
	"octopus/internal/hybrid"
	"octopus/internal/simulate"
	"octopus/internal/traffic"
)

// Extensions maps IDs to the experiment runners that go beyond the paper's
// figures: ablations of design choices DESIGN.md calls out and the §7
// extensions the paper describes but does not plot.
func Extensions() map[string]Runner {
	return map[string]Runner{
		"ext-solstice":   ExtSolstice,
		"ext-ports":      ExtPorts,
		"ext-makespan":   ExtMakespan,
		"ext-backtrack":  ExtBacktrack,
		"ext-eclipsepp":  ExtEclipsePP,
		"ext-buffers":    ExtBuffers,
		"ext-adaptive":   ExtAdaptive,
		"ext-epsilon":    ExtEpsilon,
		"ext-redundancy": ExtRedundancy,
	}
}

// ExtensionIDs returns the sorted list of extension experiment IDs.
func ExtensionIDs() []string {
	es := Extensions()
	ids := make([]string, 0, len(es))
	for id := range es {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// ExtSolstice compares Octopus against both one-hop-decomposition
// baselines — Eclipse-Based and a Solstice-style BvN decomposition — for
// varying reconfiguration delay.
func ExtSolstice(sc Scale) (*Table, error) {
	t := &Table{
		ID: "ext-solstice", Title: "Octopus vs one-hop decomposition baselines",
		XLabel: "delta", YLabel: "% packets delivered",
		Series: []string{"Octopus", "Eclipse-Based", "Solstice-Based"},
	}
	for i, d := range sc.DeltaSweep {
		d := d
		vals, err := averagePoint(sc, int64(i)+1, 3, func(rng *rand.Rand) ([]float64, error) {
			g := graph.Complete(sc.Nodes)
			load, err := traffic.Synthetic(g, traffic.DefaultSyntheticParams(sc.Nodes, sc.Window), rng)
			if err != nil {
				return nil, err
			}
			ap := sc.params()
			ap.Delta = d
			oct, err := run("octopus", g, load, ap)
			if err != nil {
				return nil, err
			}
			ecl, err := run("eclipse-based", g, load, ap)
			if err != nil {
				return nil, err
			}
			sol, err := run("solstice", g, load, ap)
			if err != nil {
				return nil, err
			}
			return []float64{oct.delivered * 100, ecl.delivered * 100, sol.delivered * 100}, nil
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, Row{X: float64(d), Values: vals})
	}
	return t, nil
}

// ExtPorts evaluates the §7 K-ports-per-node model: delivered packets as
// the per-node port count grows (each configuration is a union of up to K
// edge-disjoint matchings).
func ExtPorts(sc Scale) (*Table, error) {
	t := &Table{
		ID: "ext-ports", Title: "K ports per node (§7)",
		XLabel: "ports", YLabel: "% packets delivered",
		Series: []string{"Octopus", "AbsoluteUB"},
	}
	for i, ports := range []int{1, 2, 4} {
		ports := ports
		vals, err := averagePoint(sc, int64(i)+1, 2, func(rng *rand.Rand) ([]float64, error) {
			g := graph.Complete(sc.Nodes)
			load, err := traffic.Synthetic(g, traffic.DefaultSyntheticParams(sc.Nodes, sc.Window), rng)
			if err != nil {
				return nil, err
			}
			ap := sc.params()
			ap.Ports = ports
			oct, err := run("octopus", g, load, ap)
			if err != nil {
				return nil, err
			}
			// Capacity bound scales with the port count.
			total := load.TotalPackets()
			abs := float64(baseline.AbsoluteUpperBound(load, sc.Window*ports, sc.Nodes)) / float64(total)
			return []float64{oct.delivered * 100, abs * 100}, nil
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, Row{X: float64(ports), Values: vals})
	}
	return t, nil
}

// ExtMakespan solves the §7 makespan-minimization problem for growing load
// intensity and reports the minimal full-service window against a trivial
// per-port lower bound (a port can send one packet per slot).
func ExtMakespan(sc Scale) (*Table, error) {
	t := &Table{
		ID: "ext-makespan", Title: "Makespan minimization (§7)",
		XLabel: "load%", YLabel: "slots",
		Series: []string{"Octopus makespan", "per-port lower bound"},
	}
	for i, pct := range []int{25, 50, 100} {
		pct := pct
		vals, err := averagePoint(sc, int64(i)+1, 2, func(rng *rand.Rand) ([]float64, error) {
			g := graph.Complete(sc.Nodes)
			p := traffic.DefaultSyntheticParams(sc.Nodes, sc.Window*pct/100)
			load, err := traffic.Synthetic(g, p, rng)
			if err != nil {
				return nil, err
			}
			w, _, err := hybrid.Makespan(g, load, core.Options{Delta: sc.Delta, Matcher: sc.Matcher})
			if err != nil {
				return nil, err
			}
			// Lower bound: the busiest output port must emit its packets
			// one per slot, plus one reconfiguration.
			perPort := make(map[int]int)
			for _, f := range load.Flows {
				perPort[f.Src] += f.Size
			}
			lb := 0
			for _, v := range perPort {
				if v > lb {
					lb = v
				}
			}
			return []float64{float64(w), float64(lb + sc.Delta)}, nil
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, Row{X: float64(pct), Values: vals})
	}
	return t, nil
}

// ExtBacktrack ablates Octopus+'s direct-link backtracking (§6): with the
// paper's general multi-route loads, backtracking is what guarantees the
// approximation bound; this measures what it buys empirically.
func ExtBacktrack(sc Scale) (*Table, error) {
	t := &Table{
		ID: "ext-backtrack", Title: "Octopus+ backtracking ablation (§6)",
		XLabel: "delta", YLabel: "% packets delivered (plan)",
		Series: []string{"Octopus+", "Octopus+ no-backtrack", "Octopus-random"},
	}
	for i, d := range sc.DeltaSweep {
		d := d
		vals, err := averagePoint(sc, int64(i)+1, 3, func(rng *rand.Rand) ([]float64, error) {
			g := graph.Complete(sc.Nodes)
			p := traffic.DefaultSyntheticParams(sc.Nodes, sc.Window)
			p.RouteChoices = 10
			load, err := traffic.Synthetic(g, p, rng)
			if err != nil {
				return nil, err
			}
			ap := sc.params()
			ap.Delta = d
			with, err := run("octopus-plus", g, load, ap)
			if err != nil {
				return nil, err
			}
			apN := ap
			apN.DisableBacktrack = true
			without, err := run("octopus-plus", g, load, apN)
			if err != nil {
				return nil, err
			}
			apR := ap
			apR.Rng = rng
			rnd, err := run("octopus-random", g, load, apR)
			if err != nil {
				return nil, err
			}
			return []float64{with.delivered * 100, without.delivered * 100, rnd.delivered * 100}, nil
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, Row{X: float64(d), Values: vals})
	}
	return t, nil
}

// ExtEclipsePP compares the two realizations of the Eclipse-Based
// baseline: fixed-route VOQ replay (the default, measured by the same
// simulator as everything else) vs. Eclipse++ time-expanded re-routing
// (the algorithm of [36] the paper names), against Octopus.
func ExtEclipsePP(sc Scale) (*Table, error) {
	t := &Table{
		ID: "ext-eclipsepp", Title: "Eclipse-Based realizations: VOQ replay vs Eclipse++ re-routing",
		XLabel: "delta", YLabel: "% packets delivered",
		Series: []string{"Octopus", "Eclipse-Based (replay)", "Eclipse-Based (Eclipse++)"},
	}
	for i, d := range sc.DeltaSweep {
		d := d
		vals, err := averagePoint(sc, int64(i)+1, 3, func(rng *rand.Rand) ([]float64, error) {
			g := graph.Complete(sc.Nodes)
			load, err := traffic.Synthetic(g, traffic.DefaultSyntheticParams(sc.Nodes, sc.Window), rng)
			if err != nil {
				return nil, err
			}
			ap := sc.params()
			ap.Delta = d
			oct, err := run("octopus", g, load, ap)
			if err != nil {
				return nil, err
			}
			ecl, err := run("eclipse-based", g, load, ap)
			if err != nil {
				return nil, err
			}
			epp, err := run("eclipse-pp", g, load, ap)
			if err != nil {
				return nil, err
			}
			return []float64{oct.delivered * 100, ecl.delivered * 100, epp.delivered * 100}, nil
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, Row{X: float64(d), Values: vals})
	}
	return t, nil
}

// ExtBuffers quantifies the in-network buffering multi-hop circuit
// scheduling requires: the peak per-node and aggregate packets parked at
// intermediate nodes under an Octopus schedule, as the average route
// length grows (all flows forced to the same length).
func ExtBuffers(sc Scale) (*Table, error) {
	t := &Table{
		ID: "ext-buffers", Title: "Peak intermediate buffering vs route length",
		XLabel: "route hops", YLabel: "packets buffered (peak)",
		Series: []string{"max per node", "max total", "delivered%"},
	}
	for i, hops := range sc.HopSweep {
		hops := hops
		vals, err := averagePoint(sc, int64(i)+1, 3, func(rng *rand.Rand) ([]float64, error) {
			g := graph.Complete(sc.Nodes)
			p := traffic.DefaultSyntheticParams(sc.Nodes, sc.Window)
			p.FixedHops = hops
			load, err := traffic.Synthetic(g, p, rng)
			if err != nil {
				return nil, err
			}
			opt := core.Options{Window: sc.Window, Delta: sc.Delta, Matcher: sc.Matcher}
			s, err := core.New(g, load, opt)
			if err != nil {
				return nil, err
			}
			res, err := s.Run()
			if err != nil {
				return nil, err
			}
			sim, err := simulate.Run(g, load, res.Schedule, simulate.Options{
				Window: sc.Window, TrackBuffers: true,
			})
			if err != nil {
				return nil, err
			}
			return []float64{
				float64(sim.MaxNodeBuffer),
				float64(sim.MaxTotalBuffer),
				sim.DeliveredFraction() * 100,
			}, nil
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, Row{X: float64(hops), Values: vals})
	}
	return t, nil
}

// ExtAdaptive contrasts offline window planning (Octopus over one epoch)
// with the queue-state-driven MaxWeight adaptive policy of the related
// work [37], with and without reconfiguration hysteresis, on a known load
// for varying reconfiguration delay.
func ExtAdaptive(sc Scale) (*Table, error) {
	t := &Table{
		ID: "ext-adaptive", Title: "Offline window planning vs queue-state MaxWeight",
		XLabel: "delta", YLabel: "% packets delivered",
		Series: []string{"Octopus", "MaxWeight", "MaxWeight hys=1.5"},
	}
	for i, d := range sc.DeltaSweep {
		d := d
		vals, err := averagePoint(sc, int64(i)+1, 3, func(rng *rand.Rand) ([]float64, error) {
			g := graph.Complete(sc.Nodes)
			load, err := traffic.Synthetic(g, traffic.DefaultSyntheticParams(sc.Nodes, sc.Window), rng)
			if err != nil {
				return nil, err
			}
			ap := sc.params()
			ap.Delta = d
			oct, err := run("octopus", g, load, ap)
			if err != nil {
				return nil, err
			}
			// Hold 0 selects the online package default of 10·Δ.
			mw, err := run("maxweight", g, load, ap)
			if err != nil {
				return nil, err
			}
			apH := ap
			apH.Hysteresis64 = 96
			hys, err := run("maxweight", g, load, apH)
			if err != nil {
				return nil, err
			}
			return []float64{
				oct.delivered * 100,
				mw.delivered * 100,
				hys.delivered * 100,
			}, nil
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, Row{X: float64(d), Values: vals})
	}
	return t, nil
}

// ExtEpsilon sweeps the Octopus-e ε (in 1/64 units) on the Fig 7b
// hardest setting (every flow on a 3-hop route): how sensitive is the
// later-hops bonus, and does a large ε overshoot?
func ExtEpsilon(sc Scale) (*Table, error) {
	t := &Table{
		ID: "ext-epsilon", Title: "Octopus-e ε sensitivity (uniform 3-hop routes)",
		XLabel: "eps64", YLabel: "% packets delivered",
		Series: []string{"Octopus-e", "UB"},
	}
	hops := sc.HopSweep[len(sc.HopSweep)-1]
	for i, eps := range []int{0, 2, 4, 8, 16, 32, 64} {
		eps := eps
		vals, err := averagePoint(sc, int64(i)+1, 2, func(rng *rand.Rand) ([]float64, error) {
			g := graph.Complete(sc.Nodes)
			p := traffic.DefaultSyntheticParams(sc.Nodes, sc.Window)
			p.FixedHops = hops
			load, err := traffic.Synthetic(g, p, rng)
			if err != nil {
				return nil, err
			}
			// Plain octopus honors Epsilon64 directly, so eps=0 stays the
			// no-bonus baseline (octopus-e would default 0 to 4).
			ap := sc.params()
			ap.Epsilon64 = eps
			oct, err := run("octopus", g, load, ap)
			if err != nil {
				return nil, err
			}
			ub, err := run("ub", g, load, ap)
			if err != nil {
				return nil, err
			}
			return []float64{oct.delivered * 100, ub.delivered * 100}, nil
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, Row{X: float64(eps), Values: vals})
	}
	return t, nil
}

func init() {
	// Guard against ID collisions between figures and extensions.
	figs := Runners()
	for id := range Extensions() {
		if _, dup := figs[id]; dup {
			panic(fmt.Sprintf("experiment: duplicate runner ID %q", id))
		}
	}
}
