package experiment

import "testing"

// TestExtRedundancyShowdown pins the acceptance ordering of the
// proactive-vs-reactive showdown on the committed failure traces: adding a
// protection layer never loses packets (both >= reactive-only >= none,
// proactive-only >= none), proactive copies cost real schedule effort
// (psi overhead >= 1), and at k=1 provisioning is the identity so the arms
// collapse pairwise.
func TestExtRedundancyShowdown(t *testing.T) {
	sc := tiny()
	tab, err := ExtRedundancy(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 (k = 1..3)", len(tab.Rows))
	}
	const eps = 1e-9
	for _, row := range tab.Rows {
		none, reactive, proactive, both := row.Values[0], row.Values[1], row.Values[2], row.Values[3]
		onTime, overhead := row.Values[4], row.Values[5]
		if reactive < none-eps {
			t.Errorf("k=%v: reactive-only %.2f below none %.2f", row.X, reactive, none)
		}
		if both < reactive-eps {
			t.Errorf("k=%v: both %.2f below reactive-only %.2f", row.X, both, reactive)
		}
		if proactive < none-eps {
			t.Errorf("k=%v: proactive-only %.2f below none %.2f", row.X, proactive, none)
		}
		if onTime > both+eps {
			t.Errorf("k=%v: on-time %.2f above total %.2f", row.X, onTime, both)
		}
		if overhead < 1-eps {
			t.Errorf("k=%v: psi overhead %.3f below 1", row.X, overhead)
		}
	}
	// k=1: no copies are provisioned, so the proactive arms are the same
	// runs as their unprotected counterparts — exactly, not approximately.
	k1 := tab.Rows[0]
	if k1.Values[2] != k1.Values[0] || k1.Values[3] != k1.Values[1] {
		t.Errorf("k=1 arms do not collapse pairwise: %v", k1.Values)
	}
	if k1.Values[5] != 1 {
		t.Errorf("k=1 psi overhead = %v, want exactly 1", k1.Values[5])
	}
	// The committed traces must actually bite: an unprotected run on a
	// degraded fabric cannot deliver everything.
	for _, row := range tab.Rows {
		if row.Values[0] >= 100 {
			t.Errorf("k=%v: none arm delivered 100%% — the failure traces changed nothing", row.X)
		}
	}
}
