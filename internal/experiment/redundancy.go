package experiment

import (
	"bytes"
	"embed"
	"fmt"
	"math/rand"
	"sort"

	"octopus/internal/core"
	"octopus/internal/fault"
	"octopus/internal/graph"
	"octopus/internal/online"
	"octopus/internal/traffic"
)

// The proactive-vs-reactive showdown runs at a fixed geometry, independent
// of Scale (which still controls instances, workers, and seed): the
// committed failure traces below are tied to this fabric and epoch length,
// so scaling the network would silently decouple the failures from the
// topology they were generated for.
const (
	redNodes      = 24  // ChordRing(24, 2, 5): out-degree 3, up to 3 disjoint paths
	redEpochW     = 120 // epoch window in slots; trace bursts straddle its boundaries
	redDelta      = 8   // reconfiguration delay
	redLoadWindow = 60  // synthetic load sized to half the epoch: ~2x headroom
	redCritFrac   = 0.5 // fraction of flows marked critical (largest first)
	redStretch    = 2.0 // disjoint-alternate stretch cap
	redHorizon    = 4   // "on time" = delivered within the first 4 epochs
	redMaxEpochs  = 8   // hard cap so no arm runs unbounded
)

//go:generate go run testdata/redundancy/gen.go

//go:embed testdata/redundancy/trace*.json
var redTraceFS embed.FS

// redTraces parses the committed correlated-failure traces, sorted by file
// name so the per-instance choice is deterministic.
func redTraces() ([]*fault.Trace, error) {
	entries, err := redTraceFS.ReadDir("testdata/redundancy")
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	var traces []*fault.Trace
	for _, name := range names {
		raw, err := redTraceFS.ReadFile("testdata/redundancy/" + name)
		if err != nil {
			return nil, err
		}
		tr, err := fault.ReadJSON(bytes.NewReader(raw))
		if err != nil {
			return nil, fmt.Errorf("experiment: trace %s: %w", name, err)
		}
		traces = append(traces, tr)
	}
	if len(traces) == 0 {
		return nil, fmt.Errorf("experiment: no committed redundancy traces")
	}
	return traces, nil
}

// redArm runs one arm of the showdown: the arrivals (all at slot 0) under
// one committed failure trace, with or without proactive copies (red) and
// with or without reactive epoch-boundary repair.
func redArm(g *graph.Digraph, load *traffic.Load, tr *fault.Trace, mat core.Matcher, red *traffic.Redundancy, reactive bool) (*online.FaultResult, error) {
	arrivals := make([]online.Arrival, len(load.Flows))
	for i, f := range load.Flows {
		arrivals[i] = online.Arrival{Flow: f, At: 0}
	}
	opt := online.RedundantFaultOptions{
		FaultOptions: online.FaultOptions{
			Options: online.Options{
				Core:      core.Options{Window: redEpochW, Delta: redDelta, Matcher: mat},
				MaxEpochs: redMaxEpochs,
			},
			SkipReference: true,
		},
		Redundancy: red,
		NoReactive: !reactive,
	}
	return online.RunRedundantFaulty(g, arrivals, tr, opt)
}

// onTimeFraction is the deduplicated fraction delivered within the first
// redHorizon epochs.
func onTimeFraction(res *online.FaultResult) float64 {
	if res.UniqueTotal == 0 {
		return 0
	}
	onTime := 0
	for _, ep := range res.Epochs {
		if ep.Epoch < redHorizon {
			onTime += ep.UniqueDelivered
		}
	}
	return float64(onTime) / float64(res.UniqueTotal)
}

// ExtRedundancy is the proactive-vs-reactive fault showdown: the same
// synthetic load on the same degraded fabric under four protection arms —
// no protection, reactive repair only, proactive k-disjoint copies only,
// and both — replayed over committed correlated-failure traces. Rows sweep
// the copy count k; the last series reports the ψ cost of proactive
// protection as the overhead of "both" relative to reactive-only. At k=1
// proactive provisioning is the identity, so the first row doubles as a
// live check that the arms collapse pairwise.
func ExtRedundancy(sc Scale) (*Table, error) {
	traces, err := redTraces()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID: "ext-redundancy", Title: "Proactive multipath redundancy vs reactive repair under correlated failures",
		XLabel: "k", YLabel: "% unique packets delivered (PsiOverhead: ratio)",
		Series: []string{"None", "ReactiveOnly", "ProactiveOnly", "Both", "BothOnTime", "PsiOverhead"},
	}
	for _, k := range []int{1, 2, 3} {
		k := k
		vals, err := averagePoint(sc, int64(k), 6, func(rng *rand.Rand) ([]float64, error) {
			tr := traces[rng.Intn(len(traces))]
			g := graph.ChordRing(redNodes, 2, 5)
			load, err := traffic.Synthetic(g, traffic.DefaultSyntheticParams(redNodes, redLoadWindow), rng)
			if err != nil {
				return nil, err
			}
			// Provision the proactive arms: largest-half flows get up to k
			// pairwise edge-disjoint route copies, expanded into per-copy
			// flows tied together by the redundancy group map.
			prov := load.Clone()
			traffic.MarkCritical(prov, redCritFrac)
			prov = traffic.Redundant(g, prov, k, redStretch)
			expanded, red := traffic.ExpandRedundant(prov)

			none, err := redArm(g, load, tr, sc.Matcher, nil, false)
			if err != nil {
				return nil, err
			}
			reactive, err := redArm(g, load, tr, sc.Matcher, nil, true)
			if err != nil {
				return nil, err
			}
			proactive, err := redArm(g, expanded, tr, sc.Matcher, red, false)
			if err != nil {
				return nil, err
			}
			both, err := redArm(g, expanded, tr, sc.Matcher, red, true)
			if err != nil {
				return nil, err
			}
			overhead := 1.0
			if reactive.Psi > 0 {
				overhead = float64(both.Psi) / float64(reactive.Psi)
			}
			return []float64{
				none.UniqueDeliveredFraction() * 100,
				reactive.UniqueDeliveredFraction() * 100,
				proactive.UniqueDeliveredFraction() * 100,
				both.UniqueDeliveredFraction() * 100,
				onTimeFraction(both) * 100,
				overhead,
			}, nil
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, Row{X: float64(k), Values: vals})
	}
	return t, nil
}
