package experiment

import (
	"math/rand"
	"time"

	"octopus/internal/core"
	"octopus/internal/graph"
	"octopus/internal/traffic"
)

// The Fig4/Fig5 family compares Octopus, Eclipse-Based, UB and the absolute
// upper bound across four sweeps (nodes, reconfiguration delay, skew,
// sparsity), reporting packets delivered (Fig 4) and link utilization
// (Fig 5).

const (
	metricDelivered = iota
	metricUtilization
	metricDeliveredOfPsi
)

// sweepCase describes one instance generation for the Fig4/5 family.
type sweepCase struct {
	nodes  int
	window int
	delta  int
	mutate func(*traffic.SyntheticParams)
}

// runComparison produces the four standard series for one sweep point.
func runComparison(sc Scale, c sweepCase, metric int) point {
	return func(rng *rand.Rand) ([]float64, error) {
		g := graph.Complete(c.nodes)
		p := traffic.DefaultSyntheticParams(c.nodes, c.window)
		if c.mutate != nil {
			c.mutate(&p)
		}
		load, err := traffic.Synthetic(g, p, rng)
		if err != nil {
			return nil, err
		}
		ap := sc.params()
		ap.Window, ap.Delta = c.window, c.delta
		oct, err := run("octopus", g, load, ap)
		if err != nil {
			return nil, err
		}
		ecl, err := run("eclipse-based", g, load, ap)
		if err != nil {
			return nil, err
		}
		ub, err := run("ub", g, load, ap)
		if err != nil {
			return nil, err
		}
		abs := absUB(load, c.window, c.nodes)
		pick := func(m metrics) float64 {
			switch metric {
			case metricUtilization:
				return m.utilization * 100
			case metricDeliveredOfPsi:
				return m.deliveredOfPsi * 100
			default:
				return m.delivered * 100
			}
		}
		vals := []float64{pick(oct), pick(ecl), pick(ub)}
		if metric == metricDelivered {
			vals = append(vals, abs*100)
		}
		return vals, nil
	}
}

func comparisonSeries(metric int) []string {
	s := []string{"Octopus", "Eclipse-Based", "UB"}
	if metric == metricDelivered {
		s = append(s, "AbsoluteUB")
	}
	return s
}

func comparisonTable(sc Scale, id, title, xlabel string, metric int, xs []float64, cases []sweepCase) (*Table, error) {
	t := &Table{
		ID: id, Title: title, XLabel: xlabel,
		YLabel: map[int]string{
			metricDelivered:      "% packets delivered",
			metricUtilization:    "% link utilization",
			metricDeliveredOfPsi: "packets delivered as % of ψ",
		}[metric],
		Series: comparisonSeries(metric),
	}
	for i, c := range cases {
		vals, err := averagePoint(sc, int64(i)+1, len(t.Series), runComparison(sc, c, metric))
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, Row{X: xs[i], Values: vals})
	}
	return t, nil
}

func nodeCases(sc Scale) ([]float64, []sweepCase) {
	var xs []float64
	var cases []sweepCase
	for _, n := range sc.NodeSweep {
		xs = append(xs, float64(n))
		cases = append(cases, sweepCase{nodes: n, window: sc.Window, delta: sc.Delta})
	}
	return xs, cases
}

func deltaCases(sc Scale) ([]float64, []sweepCase) {
	var xs []float64
	var cases []sweepCase
	for _, d := range sc.DeltaSweep {
		xs = append(xs, float64(d))
		cases = append(cases, sweepCase{nodes: sc.Nodes, window: sc.Window, delta: d})
	}
	return xs, cases
}

func skewCases(sc Scale) ([]float64, []sweepCase) {
	var xs []float64
	var cases []sweepCase
	for _, s := range sc.SkewSweep {
		s := s
		xs = append(xs, float64(s))
		cases = append(cases, sweepCase{
			nodes: sc.Nodes, window: sc.Window, delta: sc.Delta,
			mutate: func(p *traffic.SyntheticParams) {
				total := p.CL + p.CS
				p.CS = total * s / 100
				p.CL = total - p.CS
			},
		})
	}
	return xs, cases
}

func sparsityCases(sc Scale) ([]float64, []sweepCase) {
	var xs []float64
	var cases []sweepCase
	for _, fl := range sc.SparsitySweep {
		fl := fl
		xs = append(xs, float64(fl))
		cases = append(cases, sweepCase{
			nodes: sc.Nodes, window: sc.Window, delta: sc.Delta,
			mutate: func(p *traffic.SyntheticParams) {
				p.NL = maxInt(1, fl/4)
				p.NS = maxInt(1, fl-fl/4)
			},
		})
	}
	return xs, cases
}

// Fig4a: packets delivered (%) for varying number of nodes.
func Fig4a(sc Scale) (*Table, error) {
	xs, cases := nodeCases(sc)
	return comparisonTable(sc, "4a", "Packets delivered for varying number of nodes", "nodes", metricDelivered, xs, cases)
}

// Fig4b: packets delivered (%) for varying reconfiguration delay.
func Fig4b(sc Scale) (*Table, error) {
	xs, cases := deltaCases(sc)
	return comparisonTable(sc, "4b", "Packets delivered for varying reconfiguration delay", "delta", metricDelivered, xs, cases)
}

// Fig4c: packets delivered (%) for varying traffic skew (c_S as a
// percentage of c_S + c_L).
func Fig4c(sc Scale) (*Table, error) {
	xs, cases := skewCases(sc)
	return comparisonTable(sc, "4c", "Packets delivered for varying traffic skew", "cS%", metricDelivered, xs, cases)
}

// Fig4d: packets delivered (%) for varying traffic sparsity (n_L + n_S).
func Fig4d(sc Scale) (*Table, error) {
	xs, cases := sparsityCases(sc)
	return comparisonTable(sc, "4d", "Packets delivered for varying traffic sparsity", "flows/port", metricDelivered, xs, cases)
}

// Fig5a-d: link utilization (%) over the same four sweeps.
func Fig5a(sc Scale) (*Table, error) {
	xs, cases := nodeCases(sc)
	return comparisonTable(sc, "5a", "Link utilization for varying number of nodes", "nodes", metricUtilization, xs, cases)
}

// Fig5b: link utilization (%) for varying reconfiguration delay.
func Fig5b(sc Scale) (*Table, error) {
	xs, cases := deltaCases(sc)
	return comparisonTable(sc, "5b", "Link utilization for varying reconfiguration delay", "delta", metricUtilization, xs, cases)
}

// Fig5c: link utilization (%) for varying traffic skew.
func Fig5c(sc Scale) (*Table, error) {
	xs, cases := skewCases(sc)
	return comparisonTable(sc, "5c", "Link utilization for varying traffic skew", "cS%", metricUtilization, xs, cases)
}

// Fig5d: link utilization (%) for varying traffic sparsity.
func Fig5d(sc Scale) (*Table, error) {
	xs, cases := sparsityCases(sc)
	return comparisonTable(sc, "5d", "Link utilization for varying traffic sparsity", "flows/port", metricUtilization, xs, cases)
}

// Fig6: packets delivered (%) over trace-like loads standing in for the
// Facebook (Hadoop, web, database) and Microsoft traces.
func Fig6(sc Scale) (*Table, error) {
	t := &Table{
		ID: "6", Title: "Performance over datacenter trace-like loads",
		XLabel: "trace", YLabel: "% packets delivered",
		Series: []string{"Octopus", "Eclipse-Based", "UB", "AbsoluteUB"},
	}
	kinds := []traffic.TraceKind{traffic.FBHadoop, traffic.FBWeb, traffic.FBDatabase, traffic.MSHeatmap}
	for i, kind := range kinds {
		kind := kind
		vals, err := averagePoint(sc, int64(i)+1, 4, func(rng *rand.Rand) ([]float64, error) {
			g := graph.Complete(sc.Nodes)
			load, err := traffic.TraceLike(g, kind, sc.Window, traffic.SyntheticParams{}, rng)
			if err != nil {
				return nil, err
			}
			ap := sc.params()
			oct, err := run("octopus", g, load, ap)
			if err != nil {
				return nil, err
			}
			ecl, err := run("eclipse-based", g, load, ap)
			if err != nil {
				return nil, err
			}
			ub, err := run("ub", g, load, ap)
			if err != nil {
				return nil, err
			}
			abs := absUB(load, sc.Window, sc.Nodes)
			return []float64{oct.delivered * 100, ecl.delivered * 100, ub.delivered * 100, abs * 100}, nil
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, Row{X: float64(i + 1), Values: vals})
	}
	return t, nil
}

// Fig7a: packets delivered as a percentage of the objective value ψ, for
// varying reconfiguration delay.
func Fig7a(sc Scale) (*Table, error) {
	xs, cases := deltaCases(sc)
	return comparisonTable(sc, "7a", "Packets delivered as percentage of ψ vs reconfiguration delay", "delta", metricDeliveredOfPsi, xs, cases)
}

// Fig7b: Octopus-e vs Octopus vs UB for uniform route lengths 1..3.
func Fig7b(sc Scale) (*Table, error) {
	t := &Table{
		ID: "7b", Title: "Octopus-e for varying average hop count",
		XLabel: "route hops", YLabel: "% packets delivered",
		Series: []string{"Octopus", "Octopus-e", "UB"},
	}
	for i, hops := range sc.HopSweep {
		hops := hops
		vals, err := averagePoint(sc, int64(i)+1, 3, func(rng *rand.Rand) ([]float64, error) {
			g := graph.Complete(sc.Nodes)
			p := traffic.DefaultSyntheticParams(sc.Nodes, sc.Window)
			p.FixedHops = hops
			load, err := traffic.Synthetic(g, p, rng)
			if err != nil {
				return nil, err
			}
			ap := sc.params()
			oct, err := run("octopus", g, load, ap)
			if err != nil {
				return nil, err
			}
			// octopus-e defaults the later-hop bonus to eps64=4 (ε = 1/16).
			octE, err := run("octopus-e", g, load, ap)
			if err != nil {
				return nil, err
			}
			ub, err := run("ub", g, load, ap)
			if err != nil {
				return nil, err
			}
			return []float64{oct.delivered * 100, octE.delivered * 100, ub.delivered * 100}, nil
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, Row{X: float64(hops), Values: vals})
	}
	return t, nil
}

// Fig8: Octopus vs the traffic-agnostic RotorNet schedule: packets
// delivered and link utilization for varying reconfiguration delay.
func Fig8(sc Scale) (*Table, error) {
	t := &Table{
		ID: "8", Title: "Octopus vs RotorNet",
		XLabel: "delta", YLabel: "% (delivered and utilization)",
		Series: []string{"Octopus del%", "RotorNet del%", "Octopus util%", "RotorNet util%"},
	}
	for i, d := range sc.DeltaSweep {
		d := d
		vals, err := averagePoint(sc, int64(i)+1, 4, func(rng *rand.Rand) ([]float64, error) {
			g := graph.Complete(sc.Nodes)
			load, err := traffic.Synthetic(g, traffic.DefaultSyntheticParams(sc.Nodes, sc.Window), rng)
			if err != nil {
				return nil, err
			}
			ap := sc.params()
			ap.Delta = d
			oct, err := run("octopus", g, load, ap)
			if err != nil {
				return nil, err
			}
			rot, err := run("rotornet", g, load, ap)
			if err != nil {
				return nil, err
			}
			return []float64{oct.delivered * 100, rot.delivered * 100, oct.utilization * 100, rot.utilization * 100}, nil
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, Row{X: float64(d), Values: vals})
	}
	return t, nil
}

// Fig9a: Octopus-B (binary search over α) vs Octopus for varying
// reconfiguration delay.
func Fig9a(sc Scale) (*Table, error) {
	t := &Table{
		ID: "9a", Title: "Octopus-B vs Octopus",
		XLabel: "delta", YLabel: "% packets delivered",
		Series: []string{"Octopus", "Octopus-B"},
	}
	for i, d := range sc.DeltaSweep {
		d := d
		vals, err := averagePoint(sc, int64(i)+1, 2, func(rng *rand.Rand) ([]float64, error) {
			g := graph.Complete(sc.Nodes)
			load, err := traffic.Synthetic(g, traffic.DefaultSyntheticParams(sc.Nodes, sc.Window), rng)
			if err != nil {
				return nil, err
			}
			ap := sc.params()
			ap.Delta = d
			oct, err := run("octopus", g, load, ap)
			if err != nil {
				return nil, err
			}
			octB, err := run("octopus-b", g, load, ap)
			if err != nil {
				return nil, err
			}
			return []float64{oct.delivered * 100, octB.delivered * 100}, nil
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, Row{X: float64(d), Values: vals})
	}
	return t, nil
}

// Fig9b: the MHS problem with multiple routes per flow: Octopus+ vs
// Octopus-random (random route per flow, then plain Octopus), with 10
// route choices of 1-3 hops per flow.
func Fig9b(sc Scale) (*Table, error) {
	t := &Table{
		ID: "9b", Title: "Octopus+ vs Octopus-random (10 routes per flow)",
		XLabel: "delta", YLabel: "% packets delivered",
		Series: []string{"Octopus+", "Octopus-random"},
	}
	for i, d := range sc.DeltaSweep {
		d := d
		vals, err := averagePoint(sc, int64(i)+1, 2, func(rng *rand.Rand) ([]float64, error) {
			g := graph.Complete(sc.Nodes)
			p := traffic.DefaultSyntheticParams(sc.Nodes, sc.Window)
			p.RouteChoices = 10
			load, err := traffic.Synthetic(g, p, rng)
			if err != nil {
				return nil, err
			}
			ap := sc.params()
			ap.Delta = d
			plus, err := run("octopus-plus", g, load, ap)
			if err != nil {
				return nil, err
			}
			// Octopus-random pins one random route per flow from the shared
			// instance stream.
			apR := ap
			apR.Rng = rng
			rnd, err := run("octopus-random", g, load, apR)
			if err != nil {
				return nil, err
			}
			return []float64{plus.delivered * 100, rnd.delivered * 100}, nil
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, Row{X: float64(d), Values: vals})
	}
	return t, nil
}

// Fig10a: execution time of a single scheduler iteration for increasing
// network size, Octopus (exact matching) vs Octopus-G (greedy matching),
// in microseconds.
func Fig10a(sc Scale) (*Table, error) {
	t := &Table{
		ID: "10a", Title: "Per-iteration execution time vs network size",
		XLabel: "nodes", YLabel: "microseconds per iteration",
		Series: []string{"Octopus", "Octopus-G"},
	}
	for i, n := range sc.TimeNodeSweep {
		n := n
		vals, err := averagePoint(sc, int64(i)+1, 2, func(rng *rand.Rand) ([]float64, error) {
			g := graph.Complete(n)
			load, err := traffic.Synthetic(g, traffic.DefaultSyntheticParams(n, sc.Window), rng)
			if err != nil {
				return nil, err
			}
			exact, err := iterationTime(g, load, core.Options{Window: sc.Window, Delta: sc.Delta, Matcher: core.MatcherExact})
			if err != nil {
				return nil, err
			}
			greedy, err := iterationTime(g, load, core.Options{Window: sc.Window, Delta: sc.Delta, Matcher: core.MatcherGreedy})
			if err != nil {
				return nil, err
			}
			return []float64{float64(exact.Microseconds()), float64(greedy.Microseconds())}, nil
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, Row{X: float64(n), Values: vals})
	}
	return t, nil
}

// iterationTime measures the wall time of the scheduler's first greedy
// iteration (the practically significant cost per §4.1: iterations are
// computed while the previous configuration is being served).
func iterationTime(g *graph.Digraph, load *traffic.Load, opt core.Options) (time.Duration, error) {
	s, err := core.New(g, load, opt)
	if err != nil {
		return 0, err
	}
	start := time.Now()
	if _, _, err := s.Step(); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}

// Fig10b: packets delivered for varying reconfiguration delay at the
// largest sweep size, Octopus vs Octopus-G.
func Fig10b(sc Scale) (*Table, error) {
	n := sc.TimeNodeSweep[len(sc.TimeNodeSweep)-1]
	t := &Table{
		ID: "10b", Title: "Octopus vs Octopus-G at large scale",
		XLabel: "delta", YLabel: "% packets delivered",
		Series: []string{"Octopus", "Octopus-G"},
	}
	for i, d := range sc.DeltaSweep {
		d := d
		vals, err := averagePoint(sc, int64(i)+1, 2, func(rng *rand.Rand) ([]float64, error) {
			g := graph.Complete(n)
			load, err := traffic.Synthetic(g, traffic.DefaultSyntheticParams(n, sc.Window), rng)
			if err != nil {
				return nil, err
			}
			ap := sc.params()
			ap.Delta, ap.Matcher = d, core.MatcherExact
			oct, err := run("octopus", g, load, ap)
			if err != nil {
				return nil, err
			}
			gre, err := run("octopus-g", g, load, ap)
			if err != nil {
				return nil, err
			}
			return []float64{oct.delivered * 100, gre.delivered * 100}, nil
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, Row{X: float64(d), Values: vals})
	}
	return t, nil
}
