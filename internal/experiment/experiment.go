// Package experiment regenerates every table and figure of the paper's
// evaluation (§8). Each figure has a runner (Fig4a .. Fig10b) producing a
// Table of averaged series, plus a name-based dispatcher used by
// cmd/mhsbench. A Scale selects the paper's full parameters or a reduced
// quick profile so tests and benchmarks share the same code paths.
package experiment

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"sync"

	"octopus/internal/core"
)

// Scale bundles every experiment parameter so the full paper-scale profile
// and the reduced quick profile share one code path.
type Scale struct {
	Name      string
	Nodes     int // default network size (paper: 100)
	Window    int // W in time slots (paper: 10,000)
	Delta     int // Δ in time slots (paper: 20)
	Instances int // random instances averaged per point (paper: 10)
	Matcher   core.Matcher
	Seed      int64
	Workers   int // parallel instances; <=1 means sequential

	NodeSweep     []int // Fig 4a/5a x-axis
	DeltaSweep    []int // Fig 4b/5b/7a/8/9a/10b x-axis
	SkewSweep     []int // Fig 4c/5c x-axis: c_S as % of (c_S+c_L)
	SparsitySweep []int // Fig 4d/5d x-axis: flows per port (n_L+n_S), ratio 1:3
	HopSweep      []int // Fig 7b x-axis: uniform route length
	TimeNodeSweep []int // Fig 10a x-axis: network size for timing
}

// Full returns the paper's evaluation parameters. A complete run at this
// scale takes serious CPU time (the paper parallelized matchings across a
// large multi-core machine); use Quick for smoke runs.
func Full() Scale {
	return Scale{
		Name:          "full",
		Nodes:         100,
		Window:        10000,
		Delta:         20,
		Instances:     10,
		Matcher:       core.MatcherExact,
		Seed:          1,
		Workers:       8,
		NodeSweep:     []int{25, 50, 100, 200, 300},
		DeltaSweep:    []int{1, 10, 20, 50, 100, 200},
		SkewSweep:     []int{10, 30, 50, 70, 90},
		SparsitySweep: []int{4, 8, 16, 24, 32},
		HopSweep:      []int{1, 2, 3},
		TimeNodeSweep: []int{100, 200, 400, 700, 1000},
	}
}

// Quick returns a reduced profile sized for unit tests and benchmarks:
// the same sweeps and algorithms at a fraction of the paper's scale.
func Quick() Scale {
	return Scale{
		Name:          "quick",
		Nodes:         16,
		Window:        600,
		Delta:         10,
		Instances:     3,
		Matcher:       core.MatcherExact,
		Seed:          1,
		Workers:       4,
		NodeSweep:     []int{8, 12, 16, 24},
		DeltaSweep:    []int{1, 5, 10, 20, 40},
		SkewSweep:     []int{10, 30, 50, 70, 90},
		SparsitySweep: []int{4, 8, 12, 16},
		HopSweep:      []int{1, 2, 3},
		TimeNodeSweep: []int{8, 16, 32},
	}
}

// Row is one x-axis point of a Table; Values aligns with Table.Series.
type Row struct {
	X      float64
	Values []float64
}

// Table is the data behind one figure: named series sampled at a set of
// x-axis points, each averaged over Scale.Instances seeded instances.
type Table struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []string
	Rows   []Row
}

// Render writes the table as aligned text, one row per x value.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s — %s\n", t.ID, t.Title); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "# y: %s\n", t.YLabel); err != nil {
		return err
	}
	widths := make([]int, len(t.Series)+1)
	widths[0] = len(t.XLabel)
	for i, s := range t.Series {
		widths[i+1] = len(s)
	}
	cells := make([][]string, len(t.Rows))
	for r, row := range t.Rows {
		cells[r] = make([]string, len(t.Series)+1)
		cells[r][0] = trimFloat(row.X)
		for c, v := range row.Values {
			cells[r][c+1] = fmt.Sprintf("%.2f", v)
		}
		for c, s := range cells[r] {
			if len(s) > widths[c] {
				widths[c] = len(s)
			}
		}
	}
	head := make([]string, len(t.Series)+1)
	head[0] = pad(t.XLabel, widths[0])
	for i, s := range t.Series {
		head[i+1] = pad(s, widths[i+1])
	}
	if _, err := fmt.Fprintln(w, strings.Join(head, "  ")); err != nil {
		return err
	}
	for r := range cells {
		for c := range cells[r] {
			cells[r][c] = pad(cells[r][c], widths[c])
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells[r], "  ")); err != nil {
			return err
		}
	}
	return nil
}

// CSV writes the table as comma-separated values with a header row.
func (t *Table) CSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s,%s\n", t.XLabel, strings.Join(t.Series, ",")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		vals := make([]string, len(row.Values)+1)
		vals[0] = trimFloat(row.X)
		for i, v := range row.Values {
			vals[i+1] = fmt.Sprintf("%.4f", v)
		}
		if _, err := fmt.Fprintln(w, strings.Join(vals, ",")); err != nil {
			return err
		}
	}
	return nil
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

func trimFloat(x float64) string {
	s := fmt.Sprintf("%g", x)
	return s
}

// point runs one experiment instance: it receives a seeded RNG and returns
// one value per series.
type point func(rng *rand.Rand) ([]float64, error)

// averagePoint runs sc.Instances seeded instances of f (in parallel up to
// sc.Workers) and averages the per-series results.
func averagePoint(sc Scale, pointSeed int64, nseries int, f point) ([]float64, error) {
	sums := make([]float64, nseries)
	var mu sync.Mutex
	var firstErr error
	sem := make(chan struct{}, maxInt(1, sc.Workers))
	var wg sync.WaitGroup
	for inst := 0; inst < sc.Instances; inst++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(inst int) {
			defer wg.Done()
			defer func() { <-sem }()
			rng := rand.New(rand.NewSource(sc.Seed + pointSeed*1000 + int64(inst)))
			vals, err := f(rng)
			mu.Lock()
			defer mu.Unlock()
			if err != nil && firstErr == nil {
				firstErr = err
				return
			}
			if err == nil {
				if len(vals) != nseries {
					if firstErr == nil {
						firstErr = fmt.Errorf("experiment: point returned %d values, want %d", len(vals), nseries)
					}
					return
				}
				for i, v := range vals {
					sums[i] += v
				}
			}
		}(inst)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	for i := range sums {
		sums[i] /= float64(sc.Instances)
	}
	return sums, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Runner produces one figure's table at a given scale.
type Runner func(sc Scale) (*Table, error)

// Runners maps figure IDs to their runners: every table and figure of the
// paper's evaluation section.
func Runners() map[string]Runner {
	return map[string]Runner{
		"4a":  Fig4a,
		"4b":  Fig4b,
		"4c":  Fig4c,
		"4d":  Fig4d,
		"5a":  Fig5a,
		"5b":  Fig5b,
		"5c":  Fig5c,
		"5d":  Fig5d,
		"6":   Fig6,
		"7a":  Fig7a,
		"7b":  Fig7b,
		"8":   Fig8,
		"9a":  Fig9a,
		"9b":  Fig9b,
		"10a": Fig10a,
		"10b": Fig10b,
	}
}

// FigureIDs returns the sorted list of available figure IDs.
func FigureIDs() []string {
	rs := Runners()
	ids := make([]string, 0, len(rs))
	for id := range rs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run dispatches a figure or extension experiment by ID.
func Run(id string, sc Scale) (*Table, error) {
	if r, ok := Runners()[id]; ok {
		return r(sc)
	}
	if r, ok := Extensions()[id]; ok {
		return r(sc)
	}
	return nil, fmt.Errorf("experiment: unknown experiment %q (figures %v, extensions %v)",
		id, FigureIDs(), ExtensionIDs())
}
