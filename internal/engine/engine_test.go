package engine

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"octopus/internal/core"
	"octopus/internal/fault"
	"octopus/internal/graph"
	"octopus/internal/traffic"
	"octopus/internal/verify"
)

func testArrivals(t *testing.T, seed int64, window int) (*graph.Digraph, []Arrival) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	inst := verify.RandomInstance(rng)
	g, load := inst.G, inst.Load
	if len(load.Flows) == 0 {
		t.Skip("empty random instance")
	}
	arrivals := make([]Arrival, 0, len(load.Flows))
	for i, f := range load.Flows {
		f.Routes = f.Routes[:1]
		arrivals = append(arrivals, Arrival{Flow: f, At: i * window / 2})
	}
	return g, arrivals
}

func planFP(t *testing.T, res *core.Result) string {
	t.Helper()
	if res == nil || res.Schedule == nil {
		return ""
	}
	var buf bytes.Buffer
	if err := res.Schedule.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:8])
}

// runSequential drives the pipeline to drain, collecting one fingerprint
// per committed epoch, and returns them with the final totals.
func runSequential(t *testing.T, g *graph.Digraph, arrivals []Arrival, cfg Config) ([]string, Totals) {
	t.Helper()
	p, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SubmitAll(arrivals); err != nil {
		t.Fatal(err)
	}
	var fps []string
	for i := 0; i < 10000; i++ {
		plan, err := p.PlanNext()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Commit(plan); err != nil {
			t.Fatal(err)
		}
		if plan.Kind == PlanDrained {
			return fps, p.Totals()
		}
		fps = append(fps, planFP(t, plan.sched))
	}
	t.Fatal("pipeline did not drain")
	return nil, Totals{}
}

// TestPipelinedEqualsSequential is the engine half of the daemon's
// pipelining guarantee: planning each epoch on a separate goroutine —
// overlapped with concurrent submissions, cancellations, and queue reads
// from other goroutines — produces exactly the schedules of the
// single-threaded drive. Run under -race this also proves the submission
// side is properly synchronized against an in-flight PlanNext.
func TestPipelinedEqualsSequential(t *testing.T) {
	const window, delta = 60, 4
	cfg := Config{Core: core.Options{Window: window, Delta: delta}, KeepPlans: true, Repair: true, Reactive: true, Audit: true}
	for _, seed := range []int64{11, 27, 42} {
		g, arrivals := testArrivals(t, seed, window)
		wantFPs, wantTotals := runSequential(t, g, arrivals, cfg)

		p, err := New(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.SubmitAll(arrivals); err != nil {
			t.Fatal(err)
		}
		// Decoy traffic far past the horizon: submitted concurrently with
		// planning, never admitted in the compared range, so the schedules
		// must not change.
		farFuture := (len(wantFPs) + 100) * window
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			id := 1 << 20
			for {
				select {
				case <-stop:
					return
				default:
				}
				f := arrivals[0].Flow
				f.ID = id
				id++
				if err := p.Submit(f, farFuture); err != nil {
					t.Error(err)
					return
				}
				p.Cancel(-1) // unknown ID: exercises the lock, changes nothing
				p.QueuedPackets()
				p.QueuedFlows()
			}
		}()
		for i := range wantFPs {
			planCh := make(chan *Plan, 1)
			errCh := make(chan error, 1)
			go func() {
				plan, err := p.PlanNext()
				planCh <- plan
				errCh <- err
			}()
			plan, err := <-planCh, <-errCh
			if err != nil {
				t.Fatal(err)
			}
			if got := planFP(t, plan.sched); got != wantFPs[i] {
				t.Fatalf("seed %d epoch %d: pipelined schedule %q != sequential %q", seed, i, got, wantFPs[i])
			}
			if _, err := p.Commit(plan); err != nil {
				t.Fatal(err)
			}
		}
		close(stop)
		wg.Wait()
		got := p.Totals()
		if got.Delivered != wantTotals.Delivered || got.Psi != wantTotals.Psi ||
			got.Dropped != wantTotals.Dropped || got.UniqueDelivered != wantTotals.UniqueDelivered {
			t.Fatalf("seed %d: pipelined totals %+v != sequential %+v", seed, got, wantTotals)
		}
	}
}

// TestReplanBeforeCommit: a plan that was computed but never committed can
// be superseded by a fresh PlanNext for the same epoch (the daemon does
// this when submissions land while a plan is in flight); the stale plan is
// then rejected, and the two plans are identical when nothing changed.
func TestReplanBeforeCommit(t *testing.T) {
	const window = 50
	g, arrivals := testArrivals(t, 7, window)
	cfg := Config{Core: core.Options{Window: window, Delta: 3}, KeepPlans: true}
	p, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SubmitAll(arrivals); err != nil {
		t.Fatal(err)
	}
	first, err := p.PlanNext()
	if err != nil {
		t.Fatal(err)
	}
	second, err := p.PlanNext()
	if err != nil {
		t.Fatal(err)
	}
	if a, b := planFP(t, first.sched), planFP(t, second.sched); a != b {
		t.Fatalf("re-plan of an unchanged epoch diverged: %q vs %q", a, b)
	}
	if _, err := p.Commit(second); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Commit(first); err == nil {
		t.Fatal("committing a superseded plan should fail")
	} else if !strings.Contains(err.Error(), "stale plan") {
		t.Fatalf("unexpected error: %v", err)
	}
	if _, err := p.Commit(second); err == nil {
		t.Fatal("double commit should fail")
	}
}

// TestCancel covers cancellation of a queued arrival, a backlogged flow,
// and packet conservation across the whole run.
func TestCancel(t *testing.T) {
	g := graph.Complete(4)
	route := func(nodes ...int) traffic.Route { return traffic.Route(nodes) }
	mk := func(id, src, dst, size int, nodes ...int) traffic.Flow {
		return traffic.Flow{ID: id, Src: src, Dst: dst, Size: size, Routes: []traffic.Route{route(nodes...)}}
	}
	const window = 2 // tiny window so big flows span many epochs
	cfg := Config{Core: core.Options{Window: window, Delta: 1}, Repair: true, Reactive: true, Audit: true}
	p, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Submit(mk(1, 0, 1, 40, 0, 1), 0); err != nil {
		t.Fatal(err)
	}
	if err := p.Submit(mk(2, 2, 3, 40, 2, 3), 0); err != nil {
		t.Fatal(err)
	}
	if err := p.Submit(mk(3, 1, 2, 5, 1, 2), 10*window); err != nil {
		t.Fatal(err)
	}

	step := func() *Plan {
		t.Helper()
		plan, err := p.PlanNext()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Commit(plan); err != nil {
			t.Fatal(err)
		}
		return plan
	}
	step() // epoch 0: flows 1 and 2 admitted, partially served
	if p.BacklogPackets() == 0 {
		t.Fatal("expected a backlog mid-flow")
	}
	if !p.Cancel(2) {
		t.Fatal("cancel of an admitted flow should be accepted")
	}
	if !p.Cancel(3) {
		t.Fatal("cancel of a queued flow should be accepted")
	}
	if p.Cancel(99) {
		t.Fatal("cancel of an unknown flow should be rejected")
	}
	plan := step() // epoch 1: backlogged remainder of flow 2 discarded
	if plan.Stat.Cancelled == 0 {
		t.Fatal("expected the backlogged cancellation to count packets")
	}
	for i := 0; i < 100 && !p.Done(); i++ {
		step()
	}
	if !p.Done() {
		t.Fatal("pipeline did not drain")
	}
	tot := p.Totals()
	if tot.Cancelled == 0 || tot.Delivered == 0 {
		t.Fatalf("unexpected totals %+v", tot)
	}
	if got := tot.Delivered + tot.Dropped + tot.Cancelled + tot.SurvivedRedundant; got != tot.Submitted {
		t.Fatalf("packets not conserved: delivered+dropped+cancelled+survived = %d, submitted %d", got, tot.Submitted)
	}
	if _, done := p.Completion()[2]; done {
		t.Fatal("cancelled flow must not appear completed")
	}
	// Flow 3 was cancelled while still queued: all 5 packets discarded.
	if tot.Cancelled < 5 {
		t.Fatalf("queued cancellation not accounted: %+v", tot)
	}
}

// TestReloadFabric covers the live-reload path: a reload that breaks a
// flow's route triggers repair at the next boundary; invalid reloads are
// rejected without touching the fabric.
func TestReloadFabric(t *testing.T) {
	g := graph.Complete(4)
	f := traffic.Flow{ID: 1, Src: 0, Dst: 1, Size: 30, Routes: []traffic.Route{{0, 1}}}

	plain, err := New(g, Config{Core: core.Options{Window: 4, Delta: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.ReloadFabric(g); err == nil {
		t.Fatal("reload outside repair mode should fail")
	}

	tr := &fault.Trace{Events: []fault.Event{{At: 0, Kind: fault.LinkDown, From: 2, To: 3}}}
	traced, err := New(g, Config{Core: core.Options{Window: 4, Delta: 1}, Repair: true, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	if err := traced.ReloadFabric(g); err == nil {
		t.Fatal("reload during a failure trace should fail")
	}

	p, err := New(g, Config{Core: core.Options{Window: 4, Delta: 1}, Repair: true, Reactive: true, Audit: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Submit(f, 0); err != nil {
		t.Fatal(err)
	}
	plan, err := p.PlanNext()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Commit(plan); err != nil {
		t.Fatal(err)
	}
	if p.BacklogPackets() == 0 {
		t.Fatal("expected mid-flow backlog before the reload")
	}
	if err := p.ReloadFabric(graph.Complete(1)); err == nil {
		t.Fatal("reload onto a fabric that cannot host the flow should fail")
	}
	if p.Fabric() != g {
		t.Fatal("failed reload must leave the fabric unchanged")
	}
	// Remove the 0->1 link: the backlogged flow must be rerouted.
	g2 := graph.New(4)
	for u := 0; u < 4; u++ {
		for v := 0; v < 4; v++ {
			if u != v && !(u == 0 && v == 1) {
				g2.AddEdge(u, v)
			}
		}
	}
	if err := p.ReloadFabric(g2); err != nil {
		t.Fatal(err)
	}
	plan, err = p.PlanNext()
	if err != nil {
		t.Fatal(err)
	}
	if plan.Stat.Rerouted == 0 {
		t.Fatalf("expected the reload to force a reroute, stat %+v", plan.Stat)
	}
	if _, err := p.Commit(plan); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100 && !p.Done(); i++ {
		plan, err := p.PlanNext()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Commit(plan); err != nil {
			t.Fatal(err)
		}
	}
	tot := p.Totals()
	if tot.Delivered != f.Size {
		t.Fatalf("flow not fully delivered across the reload: %+v", tot)
	}
}

func TestSubmitValidation(t *testing.T) {
	p, err := New(graph.Complete(3), Config{Core: core.Options{Window: 10}})
	if err != nil {
		t.Fatal(err)
	}
	f := traffic.Flow{ID: 1, Src: 0, Dst: 1, Size: 2, Routes: []traffic.Route{{0, 1}}}
	if err := p.Submit(f, -1); err == nil {
		t.Fatal("negative arrival should fail")
	}
	if err := p.Submit(f, 0); err != nil {
		t.Fatal(err)
	}
	if err := p.Submit(f, 5); err == nil {
		t.Fatal("duplicate ID should fail")
	}
	if _, err := New(graph.Complete(3), Config{}); err == nil {
		t.Fatal("zero window should fail")
	}
}

// TestDrainedThenResume: the daemon's steady state — committing drained
// epochs while idle, then resuming when traffic arrives, keeps simulated
// time advancing and schedules correctly.
func TestDrainedThenResume(t *testing.T) {
	const window = 10
	p, err := New(graph.Complete(3), Config{Core: core.Options{Window: window, Delta: 1}, Repair: true, Reactive: true, Audit: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		plan, err := p.PlanNext()
		if err != nil {
			t.Fatal(err)
		}
		if plan.Kind != PlanDrained {
			t.Fatalf("epoch %d: want drained, got kind %d", i, plan.Kind)
		}
		if _, err := p.Commit(plan); err != nil {
			t.Fatal(err)
		}
	}
	if p.Epoch() != 3 || p.Boundary() != 3*window {
		t.Fatalf("time did not advance: epoch %d boundary %d", p.Epoch(), p.Boundary())
	}
	f := traffic.Flow{ID: 1, Src: 0, Dst: 2, Size: 4, Routes: []traffic.Route{{0, 2}}}
	if err := p.Submit(f, p.Boundary()); err != nil {
		t.Fatal(err)
	}
	plan, err := p.PlanNext()
	if err != nil {
		t.Fatal(err)
	}
	if plan.Kind != PlanScheduled || plan.Stat.Arrived != 4 {
		t.Fatalf("resume epoch: kind %d stat %+v", plan.Kind, plan.Stat)
	}
	if _, err := p.Commit(plan); err != nil {
		t.Fatal(err)
	}
	if p.Totals().Delivered != 4 {
		t.Fatalf("delivery after resume: %+v", p.Totals())
	}
}
