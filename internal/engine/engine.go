// Package engine is the stepwise epoch state machine behind the online
// schedulers and the mhsd daemon: a mutable flow-state store (arrivals,
// cancellations, backlog carried between epochs) driven by an explicit
// PlanNext / Commit cycle.
//
// PlanNext computes the next epoch's configuration — admission of due
// arrivals, fault repair against the surviving fabric, and the Octopus
// plan — WITHOUT mutating the committed pipeline state, so a driver can
// plan epoch k+1 while epoch k still "executes" (the paper's
// reconfiguration delay Δ is free compute time). Commit applies a plan:
// delivery accounting, completion tracking, the residual backlog, and the
// epoch counter advance. Because PlanNext is a pure function of the
// committed state, a pipelined driver that overlaps planning with
// execution produces exactly the schedules of a sequential driver — the
// property the daemon's double-buffered loop and its tests rest on.
//
// Concurrency contract: Submit, SubmitAll, Cancel, QueuedPackets, and
// QueuedFlows are safe to call from any goroutine at any time (the daemon
// calls them from HTTP handlers while a plan is in flight). Everything
// else — PlanNext, Commit, ReloadFabric, and the committed-state accessors
// — must be serialized by one driver goroutine.
package engine

import (
	"errors"
	"fmt"
	"sync"

	"octopus/internal/core"
	"octopus/internal/fault"
	"octopus/internal/graph"
	"octopus/internal/obs/flight"
	"octopus/internal/traffic"
)

// Arrival is one flow plus the slot at which the controller learns of it.
type Arrival struct {
	Flow traffic.Flow
	At   int
}

// Config configures a Pipeline. Core.Window is the epoch length.
type Config struct {
	Core core.Options

	// KeepPlans retains each epoch's scheduler result, scheduled load, and
	// fabric snapshot on its stat, so every per-epoch schedule can be
	// audited independently. Costs memory proportional to the run.
	KeepPlans bool

	// Trace optionally degrades and recovers the fabric according to a
	// slot-stamped failure script (nil runs failure-free). Only consulted
	// when Repair is set.
	Trace *fault.Trace

	// Repair enables the epoch-boundary fault machinery: surviving-fabric
	// snapshots, route repair of broken flows, delta jitter, and the
	// redundancy-deduplicated delivery accounting. The fault-tolerant
	// online drivers and the daemon set it; the plain online loop does
	// not.
	Repair bool

	// Reactive selects BFS rerouting for flows whose every route died
	// (with Repair); false drops them outright unless a redundancy
	// sibling survives.
	Reactive bool

	// Red ties redundancy-expanded copy flows into groups that count once
	// at delivery (see traffic.ExpandRedundant).
	Red *traffic.Redundancy

	// Audit verifies every epoch's plan against the fabric it was planned
	// for, failing the run on any infeasibility.
	Audit bool

	// Flight receives per-flow lifecycle events (admitted, planned,
	// repaired/requeued, delivered/completed, dropped, cancelled) for
	// tracked flows, keyed by arrival flow IDs. Epoch fields are pipeline
	// epochs: boundary events carry the epoch being planned, delivery and
	// completion events carry epoch+1 (matching Completion()). nil
	// disables recording; the recorder is strictly read-only — schedules
	// and totals are bit-identical either way.
	Flight *flight.Recorder
}

// Totals is the pipeline's cumulative packet accounting. Packets are
// conserved: Submitted = Delivered + Dropped + Cancelled +
// SurvivedRedundant + backlogged + still queued.
type Totals struct {
	Submitted         int   `json:"submitted"`          // packets ever submitted
	UniqueSubmitted   int   `json:"unique_submitted"`   // submitted, counting each redundancy group once
	Delivered         int   `json:"delivered"`          // packets delivered (duplicates included)
	Dropped           int   `json:"dropped"`            // packets abandoned as unreachable
	Cancelled         int   `json:"cancelled"`          // packets discarded by cancellations
	SurvivedRedundant int   `json:"survived_redundant"` // packets of dead copies a sibling copy carried
	UniqueDelivered   int   `json:"unique_delivered"`   // delivered, counting each group by its best copy
	Psi               int64 `json:"psi"`                // Σ per-epoch plan ψ in traffic.WeightScale units
}

// Pipeline is the epoch state machine. Create one with New, feed it with
// Submit/SubmitAll, and drive it with PlanNext/Commit.
type Pipeline struct {
	g   *graph.Digraph
	cfg Config
	cur *fault.Cursor // non-nil in repair mode

	// mu guards the submission side: the arrival queue, the cancellation
	// requests, and the submission totals. Everything below it is
	// committed epoch state owned by the driver goroutine.
	mu              sync.Mutex
	queue           []Arrival
	nextArrival     int
	queuedPkts      int
	seen            map[int]bool
	cancelled       map[int]bool
	submitted       int
	uniqueSubmitted int

	// Committed epoch state: the backlog carried between epochs and the
	// provenance maps tying renumbered backlog flows to their arrivals.
	epoch       int
	backlog     *traffic.Load
	origin      map[int]int // backlog flow ID -> arrival flow ID
	arrivalSrc  map[int]int // arrival flow ID -> original source node
	outstanding map[int]int // arrival flow ID -> undelivered packets
	deliveredBy map[int]int // arrival flow ID -> delivered packets so far
	members     map[int][]int
	uniquePrev  int
	nextID      int
	completion  map[int]int
	delivered   int
	dropped     int
	cancelledP  int
	survived    int
	psi         int64
}

// New returns a Pipeline over fabric g. The trace, when present, is
// validated against the fabric up front.
func New(g *graph.Digraph, cfg Config) (*Pipeline, error) {
	if cfg.Core.Window <= 0 {
		return nil, errors.New("engine: Core.Window must be positive")
	}
	if err := cfg.Trace.Validate(g); err != nil {
		return nil, err
	}
	p := &Pipeline{
		g:           g,
		cfg:         cfg,
		backlog:     &traffic.Load{},
		seen:        make(map[int]bool),
		cancelled:   make(map[int]bool),
		origin:      make(map[int]int),
		arrivalSrc:  make(map[int]int),
		outstanding: make(map[int]int),
		deliveredBy: make(map[int]int),
		members:     cfg.Red.Members(),
		completion:  make(map[int]int),
	}
	if cfg.Repair {
		p.cur = cfg.Trace.Cursor()
	}
	return p, nil
}

// Submit queues one flow to be admitted at the first epoch boundary at or
// after slot at. Arrivals are admitted in submission order, stopping at
// the first entry not yet due — callers submitting a batch must order it
// by At (the online drivers stable-sort first; the daemon submits with the
// current boundary as At, which is non-decreasing by construction).
func (p *Pipeline) Submit(f traffic.Flow, at int) error {
	if at < 0 {
		return fmt.Errorf("engine: flow %d has negative arrival %d", f.ID, at)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.seen[f.ID] {
		return fmt.Errorf("engine: duplicate arrival flow ID %d", f.ID)
	}
	p.seen[f.ID] = true
	p.queue = append(p.queue, Arrival{Flow: f, At: at})
	p.queuedPkts += f.Size
	p.submitted += f.Size
	if !p.cfg.Red.Duplicate(f.ID) {
		p.uniqueSubmitted += f.Size
	}
	return nil
}

// SubmitAll submits the arrivals in order, stopping at the first error.
func (p *Pipeline) SubmitAll(arrivals []Arrival) error {
	for _, a := range arrivals {
		if err := p.Submit(a.Flow, a.At); err != nil {
			return err
		}
	}
	return nil
}

// Cancel asks the pipeline to discard arrival id — whether still queued or
// already admitted into the backlog — at the next committed boundary.
// Returns false for an ID that was never submitted. Cancelling an already
// delivered flow is a harmless no-op.
func (p *Pipeline) Cancel(id int) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.seen[id] {
		return false
	}
	p.cancelled[id] = true
	return true
}

// QueuedPackets returns the packets submitted but not yet admitted.
func (p *Pipeline) QueuedPackets() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.queuedPkts
}

// QueuedFlows returns the flows submitted but not yet admitted.
func (p *Pipeline) QueuedFlows() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.queue) - p.nextArrival
}

// Epoch returns the next epoch to be planned (i.e. the number of epochs
// committed so far). Driver-side.
func (p *Pipeline) Epoch() int { return p.epoch }

// Boundary returns the slot of the next epoch boundary. Driver-side.
func (p *Pipeline) Boundary() int { return p.epoch * p.cfg.Core.Window }

// Fabric returns the current fabric. Driver-side.
func (p *Pipeline) Fabric() *graph.Digraph { return p.g }

// BacklogPackets returns the packets admitted but not yet delivered,
// dropped, or cancelled. Driver-side.
func (p *Pipeline) BacklogPackets() int { return p.backlog.TotalPackets() }

// Done reports whether nothing is queued or backlogged. Driver-side.
func (p *Pipeline) Done() bool {
	p.mu.Lock()
	drained := p.nextArrival == len(p.queue)
	p.mu.Unlock()
	return drained && len(p.backlog.Flows) == 0
}

// Totals returns the cumulative packet accounting. Driver-side.
func (p *Pipeline) Totals() Totals {
	p.mu.Lock()
	t := Totals{Submitted: p.submitted, UniqueSubmitted: p.uniqueSubmitted}
	p.mu.Unlock()
	t.Delivered = p.delivered
	t.Dropped = p.dropped
	t.Cancelled = p.cancelledP
	t.SurvivedRedundant = p.survived
	t.UniqueDelivered = p.uniquePrev
	t.Psi = p.psi
	return t
}

// Completion returns the map from arrival flow IDs to the 1-based epoch in
// which the flow's last packet was delivered. The map is the pipeline's
// own bookkeeping — callers take ownership only once the run is over.
// Driver-side.
func (p *Pipeline) Completion() map[int]int { return p.completion }

// ReloadFabric swaps the fabric under the pipeline at an epoch boundary.
// Must be called by the driver between Commit and the next PlanNext, and
// only in repair mode: flows whose routes the new fabric breaks are
// repaired (or dropped as unreachable) at the next planned boundary.
// Fabrics that cannot host an active flow's endpoints are rejected.
func (p *Pipeline) ReloadFabric(g *graph.Digraph) error {
	if !p.cfg.Repair {
		return errors.New("engine: fabric reload requires repair mode")
	}
	if !p.cfg.Trace.Empty() {
		return errors.New("engine: cannot reload the fabric while replaying a failure trace")
	}
	check := func(id, src, dst int) error {
		if src >= g.N() || dst >= g.N() {
			return fmt.Errorf("engine: fabric with %d nodes cannot host flow %d (%d->%d)",
				g.N(), id, src, dst)
		}
		return nil
	}
	for i := range p.backlog.Flows {
		f := &p.backlog.Flows[i]
		if err := check(p.origin[f.ID], f.Src, f.Dst); err != nil {
			return err
		}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, a := range p.queue[p.nextArrival:] {
		if err := check(a.Flow.ID, a.Flow.Src, a.Flow.Dst); err != nil {
			return err
		}
	}
	p.g = g
	return nil
}
