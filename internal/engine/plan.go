package engine

import (
	"errors"
	"fmt"

	"octopus/internal/core"
	"octopus/internal/graph"
	"octopus/internal/traffic"
)

// EpochStat summarizes one scheduling epoch.
type EpochStat struct {
	Epoch     int // 0-based epoch index
	Arrived   int // packets newly admitted at this epoch boundary
	Offered   int // packets scheduled this epoch (arrivals + backlog)
	Delivered int
	Backlog   int // packets carried into the next epoch

	// Plan and Load are the epoch's scheduler result and the exact load it
	// scheduled (nil unless Config.KeepPlans).
	Plan *core.Result
	Load *traffic.Load
}

// FaultEpochStat extends EpochStat with the epoch's degradation accounting.
type FaultEpochStat struct {
	EpochStat

	FailedLinks int // links individually down at the boundary snapshot
	FailedNodes int // nodes down at the boundary snapshot

	// Rerouted counts packets whose every route was broken by failures and
	// was repaired onto a shortest surviving path at this boundary.
	Rerouted int
	// Stranded counts the rerouted packets that were requeued from
	// in-flight positions: stuck at an intermediate node whose onward
	// route died.
	Stranded int
	// Dropped counts packets dropped at this boundary because no surviving
	// route to their destination exists (source or destination unreachable
	// on the degraded fabric).
	Dropped int

	// SurvivedRedundant counts packets of copy flows whose every route died
	// at this boundary but whose redundancy group kept another copy with a
	// live route: the dead copy is discarded without reroute or drop — the
	// surviving copy already carries the group's data (always 0 without
	// redundancy; see online.RunRedundantFaulty).
	SurvivedRedundant int

	// UniqueDelivered is the epoch's redundancy-deduplicated delivery: the
	// increase of the run's unique delivered count (each copy group counts
	// once, by its best copy) during this epoch. Without redundancy it
	// mirrors Delivered.
	UniqueDelivered int

	// RefDelivered is the failure-free reference run's delivery in this
	// epoch (-1 when the reference was skipped). The engine itself never
	// sets it; drivers that keep a reference run stamp it between PlanNext
	// and Commit.
	RefDelivered int

	// Fabric is the epoch's surviving-fabric snapshot (nil unless
	// Config.KeepPlans), so each plan can be re-audited independently.
	Fabric *graph.Digraph

	// Psi is the epoch plan's ψ contribution in traffic.WeightScale units
	// (0 for epochs that scheduled nothing).
	Psi int64

	// Cancelled counts packets discarded at this boundary because their
	// arrival was cancelled while queued or in the backlog.
	Cancelled int
}

// PlanKind classifies what a planned epoch will do when committed.
type PlanKind int

const (
	// PlanScheduled carries an Octopus plan for the epoch's merged load.
	PlanScheduled PlanKind = iota
	// PlanIdle schedules nothing but more arrivals are still queued.
	PlanIdle
	// PlanJitterSkipped idles the epoch because the failure trace's delta
	// jitter left no room for even one configuration.
	PlanJitterSkipped
	// PlanDrained means nothing is backlogged or queued: the pipeline has
	// no work now and none pending. Batch drivers stop here; the daemon
	// keeps committing drained epochs while it waits for submissions.
	PlanDrained
)

// Plan is one epoch's computed configuration, produced by PlanNext and
// applied by Commit. Stat carries the epoch's accounting as far as
// planning could fill it; Commit completes the delivery fields.
type Plan struct {
	Epoch int
	Kind  PlanKind
	// Record reports whether the batch drivers append this epoch's stat to
	// their epoch list, mirroring the recording rules of the monolithic
	// loops this engine was extracted from: scheduled, idle, and
	// jitter-skipped epochs always record; a drained boundary records only
	// when fault repair still did visible work there.
	Record bool
	Stat   FaultEpochStat

	// Planning-side snapshots consumed by Commit.
	nDue         int         // queue entries consumed (admitted or cancelled)
	admitted     []admission // admissions in queue order
	cancelledNow []int       // arrival IDs whose cancellation this plan applies
	work         *traffic.Load
	originView   map[int]int
	srcView      map[int]int
	nextID       int
	fabric       *graph.Digraph
	sched        *core.Result
	pending      map[int]int
	residual     *traffic.Load
	remap        map[int]int
	committed    bool
}

type admission struct{ id, size, src, dst int }

// Result returns the epoch's scheduler result (nil for unscheduled plan
// kinds). Unlike Stat.Plan it is available without Config.KeepPlans, so a
// long-lived driver can fingerprint or inspect each plan without paying
// for per-epoch load clones.
func (pl *Plan) Result() *core.Result { return pl.sched }

// PlanNext computes the next epoch's configuration without touching the
// committed pipeline state: it snapshots the due arrivals and pending
// cancellations, advances the failure cursor to the boundary, repairs the
// merged load against the surviving fabric (repair mode), and runs the
// Octopus planner on it. The only externally visible effects are the
// observer's repair/planner events; the flow store, epoch counter, and
// provenance maps change only in Commit — so a driver may overlap this
// call with the "execution" of the previously committed epoch.
func (p *Pipeline) PlanNext() (*Plan, error) {
	boundary := p.epoch * p.cfg.Core.Window
	if p.cur != nil {
		p.cur.AdvanceTo(boundary)
	}

	p.mu.Lock()
	i := p.nextArrival
	for i < len(p.queue) && p.queue[i].At <= boundary {
		i++
	}
	// Reading due outside the lock below is safe: Submit only appends past
	// len(queue) and nextArrival only advances in Commit, so these entries
	// are immutable until this plan commits.
	due := p.queue[p.nextArrival:i]
	drained := i == len(p.queue)
	var cancelled map[int]bool
	if len(p.cancelled) > 0 {
		cancelled = make(map[int]bool, len(p.cancelled))
		for id := range p.cancelled {
			cancelled[id] = true
		}
	}
	p.mu.Unlock()

	plan := &Plan{Epoch: p.epoch, nDue: len(due)}
	plan.Stat.Epoch = p.epoch

	// Merged provenance views: the committed maps plus this epoch's
	// admissions. Copy-on-write — the committed maps are shared untouched
	// when the boundary admits and cancels nothing.
	originView, srcView := p.origin, p.arrivalSrc
	if len(due) > 0 || cancelled != nil {
		originView = make(map[int]int, len(p.origin)+len(due))
		for k, v := range p.origin {
			originView[k] = v
		}
		srcView = make(map[int]int, len(p.arrivalSrc)+len(due))
		for k, v := range p.arrivalSrc {
			srcView[k] = v
		}
	}
	work := &traffic.Load{}
	if n := len(p.backlog.Flows) + len(due); n > 0 {
		work.Flows = make([]traffic.Flow, 0, n)
	}
	for _, f := range p.backlog.Flows {
		if cancelled[originView[f.ID]] {
			plan.Stat.Cancelled += f.Size
			plan.cancelledNow = append(plan.cancelledNow, originView[f.ID])
			continue
		}
		work.Flows = append(work.Flows, f)
	}
	nextID := p.nextID
	for _, a := range due {
		f := a.Flow
		if cancelled[f.ID] {
			plan.Stat.Cancelled += f.Size
			plan.cancelledNow = append(plan.cancelledNow, f.ID)
			continue
		}
		originView[nextID] = f.ID
		srcView[f.ID] = f.Src
		plan.admitted = append(plan.admitted, admission{id: f.ID, size: f.Size, src: f.Src, dst: f.Dst})
		f.ID = nextID
		nextID++
		work.Flows = append(work.Flows, f)
		plan.Stat.Arrived += f.Size
	}
	plan.work, plan.originView, plan.srcView, plan.nextID = work, originView, srcView, nextID

	fabric := p.g
	if p.cur != nil {
		fabric = p.cur.SurvivingOf(p.g)
		plan.Stat.FailedLinks = p.cur.FailedLinks()
		plan.Stat.FailedNodes = p.cur.FailedNodes()
	}
	plan.fabric = fabric
	if p.cfg.Repair {
		repairBacklog(fabric, work, originView, srcView, &plan.Stat, p.cfg.Red, p.cfg.Reactive, p.cfg.Flight, p.epoch)
		observeRepair(p.cfg.Core.Obs, &plan.Stat)
	}

	if len(work.Flows) == 0 {
		if drained {
			plan.Kind = PlanDrained
			plan.Record = plan.Stat.Dropped > 0 || plan.Stat.SurvivedRedundant > 0 || plan.Stat.Rerouted > 0
		} else {
			plan.Kind = PlanIdle
			plan.Record = true
		}
		return plan, nil
	}

	coreOpt := p.cfg.Core
	if p.cfg.Repair {
		// The trace's jitter stretches this epoch's reconfiguration delay;
		// a jitter so large that no configuration fits idles the epoch.
		coreOpt.Delta = p.cfg.Core.Delta + p.cfg.Trace.Jitter(p.epoch)
		if coreOpt.Delta >= coreOpt.Window {
			plan.Stat.Backlog = work.TotalPackets()
			plan.Kind = PlanJitterSkipped
			plan.Record = true
			return plan, nil
		}
	}

	s, err := core.New(fabric, work, coreOpt)
	if err != nil {
		return nil, err
	}
	sres, err := s.Run()
	if err != nil {
		return nil, err
	}
	if p.cfg.Audit {
		if err := auditEpoch(fabric, work, sres, coreOpt, p.epoch); err != nil {
			return nil, err
		}
	}
	plan.Kind = PlanScheduled
	plan.Record = true
	plan.sched = sres
	plan.pending = s.PendingByFlow()
	plan.residual, plan.remap = s.ResidualLoadMap()
	return plan, nil
}

// Commit applies a plan produced by PlanNext: admissions and cancellations
// become permanent, delivery is accounted against the arrivals, the
// residual load becomes the next backlog, and the epoch counter advances.
// The returned stat is the plan's, with the delivery fields completed.
// Plans must be committed in order; a plan from a stale epoch is rejected.
func (p *Pipeline) Commit(plan *Plan) (*FaultEpochStat, error) {
	if plan == nil {
		return nil, errors.New("engine: Commit of a nil plan")
	}
	if plan.committed {
		return nil, fmt.Errorf("engine: plan for epoch %d already committed", plan.Epoch)
	}
	if plan.Epoch != p.epoch {
		return nil, fmt.Errorf("engine: stale plan for epoch %d (pipeline at epoch %d)", plan.Epoch, p.epoch)
	}
	plan.committed = true

	p.mu.Lock()
	for _, a := range p.queue[p.nextArrival : p.nextArrival+plan.nDue] {
		p.queuedPkts -= a.Flow.Size
	}
	p.nextArrival += plan.nDue
	for _, id := range plan.cancelledNow {
		delete(p.cancelled, id)
	}
	p.compactQueueLocked()
	p.mu.Unlock()

	rec := p.cfg.Flight
	for _, a := range plan.admitted {
		p.outstanding[a.id] = a.size
		rec.Admit(int64(a.id), plan.Epoch, int64(a.size), int64(a.src), int64(a.dst))
	}
	for _, id := range plan.cancelledNow {
		if rec.Tracks(int64(id)) {
			rec.Cancelled(int64(id), plan.Epoch, int64(p.outstanding[id]))
		}
		delete(p.outstanding, id)
	}
	p.cancelledP += plan.Stat.Cancelled
	p.dropped += plan.Stat.Dropped
	p.survived += plan.Stat.SurvivedRedundant

	stat := &plan.Stat
	if plan.Kind != PlanScheduled {
		p.backlog = plan.work
		p.origin = plan.originView
		p.arrivalSrc = plan.srcView
		p.nextID = plan.nextID
		p.epoch++
		return stat, nil
	}

	sres := plan.sched
	// Per-flow delivery accounting against the arrivals. Flight events use
	// arrival IDs throughout; deliveries land at epoch+1, the boundary by
	// which the epoch's transmissions have happened (matching Completion).
	nConfigs := int64(len(sres.Schedule.Configs))
	matcher := int64(p.cfg.Core.Matcher)
	for i := range plan.work.Flows {
		f := &plan.work.Flows[i]
		orig := plan.originView[f.ID]
		if rec.Tracks(int64(orig)) {
			rec.Planned(int64(orig), plan.Epoch, nConfigs, matcher, int64(f.Size))
		}
		delivered := f.Size - plan.pending[f.ID]
		if delivered == 0 {
			continue
		}
		p.outstanding[orig] -= delivered
		p.deliveredBy[orig] += delivered
		rec.Delivered(int64(orig), plan.Epoch+1, int64(delivered))
		if p.outstanding[orig] == 0 {
			p.completion[orig] = plan.Epoch + 1
			rec.Completed(int64(orig), plan.Epoch+1)
		}
	}
	newOrigin := make(map[int]int, len(plan.remap))
	maxNew := -1
	for newID, oldID := range plan.remap {
		newOrigin[newID] = plan.originView[oldID]
		if newID > maxNew {
			maxNew = newID
		}
	}
	p.delivered += sres.Delivered
	p.psi += sres.Psi
	stat.Psi = sres.Psi
	if p.cfg.Repair {
		uniqueNow := uniqueDelivered(p.deliveredBy, p.cfg.Red, p.members)
		stat.UniqueDelivered = uniqueNow - p.uniquePrev
		p.uniquePrev = uniqueNow
	}
	stat.Offered = sres.TotalPackets
	stat.Delivered = sres.Delivered
	stat.Backlog = sres.Pending
	observeEpoch(p.cfg.Core.Obs, &stat.EpochStat, len(sres.Schedule.Configs))
	if p.cfg.KeepPlans {
		stat.Plan = sres
		stat.Load = plan.work.Clone()
		stat.Fabric = plan.fabric
	}
	p.backlog = plan.residual
	p.origin = newOrigin
	p.arrivalSrc = plan.srcView
	p.nextID = maxNew + 1
	p.epoch++
	return stat, nil
}

// compactQueueLocked drops the consumed head of the arrival queue once it
// dominates the slice, so a long-lived daemon does not retain every
// arrival ever submitted. Callers hold p.mu.
func (p *Pipeline) compactQueueLocked() {
	if p.nextArrival < 1024 || p.nextArrival <= len(p.queue)/2 {
		return
	}
	p.queue = append([]Arrival(nil), p.queue[p.nextArrival:]...)
	p.nextArrival = 0
}
