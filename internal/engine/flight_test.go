package engine

import (
	"testing"

	"octopus/internal/core"
	"octopus/internal/obs/flight"
)

// TestFlightMatcherCodesMirrorCore pins the flight wire codes to the
// core.Matcher enum. The flight package cannot import core (it sits below
// the scheduler layers), so it mirrors the values; this test is the pin
// that promise relies on — if core ever renumbers or grows the enum, the
// mirror must be updated in the same change.
func TestFlightMatcherCodesMirrorCore(t *testing.T) {
	pairs := []struct {
		name   string
		core   core.Matcher
		flight int64
	}{
		{"exact", core.MatcherExact, flight.MatcherExact},
		{"greedy", core.MatcherGreedy, flight.MatcherGreedy},
		{"dense", core.MatcherDense, flight.MatcherDense},
		{"sparse", core.MatcherSparse, flight.MatcherSparse},
		{"warm", core.MatcherWarm, flight.MatcherWarm},
	}
	for _, p := range pairs {
		if int64(p.core) != p.flight {
			t.Errorf("matcher %s: core=%d flight=%d", p.name, int64(p.core), p.flight)
		}
		if got := flight.MatcherCode(p.name); got != p.flight {
			t.Errorf("MatcherCode(%q) = %d, want %d", p.name, got, p.flight)
		}
	}
}
