package engine

import "octopus/internal/obs"

// observeEpoch records one scheduled epoch on the observer: the per-epoch
// counters, the live queue-depth gauge, and the "online.epoch" trace event.
// Read-only with respect to the run; a nil observer costs the Enabled check.
// The metric and event names predate the engine extraction and are kept
// stable for dashboards.
func observeEpoch(o *obs.Observer, stat *EpochStat, reconfigs int) {
	if !o.Enabled() {
		return
	}
	o.Counter("octopus_online_epochs_total").Inc()
	o.Counter("octopus_online_arrived_total").Add(int64(stat.Arrived))
	o.Counter("octopus_online_delivered_total").Add(int64(stat.Delivered))
	o.Counter("octopus_online_reconfigs_total").Add(int64(reconfigs))
	o.Gauge("octopus_online_backlog").Set(int64(stat.Backlog))
	o.Tracer().Emit("online.epoch",
		obs.I("epoch", int64(stat.Epoch)),
		obs.I("arrived", int64(stat.Arrived)),
		obs.I("offered", int64(stat.Offered)),
		obs.I("delivered", int64(stat.Delivered)),
		obs.I("backlog", int64(stat.Backlog)),
		obs.I("reconfigs", int64(reconfigs)),
	)
}

// observeRepair records an epoch boundary's fault-repair outcome: the
// degradation counters always accumulate; the "online.repair" trace event
// fires only at boundaries where failures were visible or repairs happened,
// so failure-free epochs stay silent in the trace.
func observeRepair(o *obs.Observer, stat *FaultEpochStat) {
	if !o.Enabled() {
		return
	}
	o.Counter("octopus_online_rerouted_total").Add(int64(stat.Rerouted))
	o.Counter("octopus_online_stranded_requeued_total").Add(int64(stat.Stranded))
	o.Counter("octopus_online_dropped_total").Add(int64(stat.Dropped))
	if stat.FailedLinks == 0 && stat.FailedNodes == 0 &&
		stat.Rerouted == 0 && stat.Stranded == 0 && stat.Dropped == 0 {
		return
	}
	o.Tracer().Emit("online.repair",
		obs.I("epoch", int64(stat.Epoch)),
		obs.I("failed_links", int64(stat.FailedLinks)),
		obs.I("failed_nodes", int64(stat.FailedNodes)),
		obs.I("rerouted", int64(stat.Rerouted)),
		obs.I("stranded", int64(stat.Stranded)),
		obs.I("dropped", int64(stat.Dropped)),
	)
}
