package engine

import (
	"fmt"

	"octopus/internal/core"
	"octopus/internal/graph"
	"octopus/internal/obs/flight"
	"octopus/internal/traffic"
	"octopus/internal/verify"
)

// repairBacklog rewrites the backlog in place against the surviving fabric:
// flows keep the candidate routes that survived; flows whose every route
// died are discarded when a sibling copy of their redundancy group still
// has a live route (proactive redundancy absorbing the failure), otherwise
// rerouted onto a BFS shortest surviving path from their current position
// (reactive repair, when enabled); flows with no surviving path are
// dropped. Degradation counts accumulate onto stat.
func repairBacklog(fabric *graph.Digraph, backlog *traffic.Load, origin, arrivalSrc map[int]int, stat *FaultEpochStat, red *traffic.Redundancy, reactive bool, rec *flight.Recorder, epoch int) {
	// Pass 1: which redundancy groups still have a copy with a live route.
	// Computed before any repair, so reroutes never count as redundancy.
	var groupLive map[int]bool
	if !red.Empty() {
		groupLive = make(map[int]bool)
		for i := range backlog.Flows {
			f := &backlog.Flows[i]
			p, ok := red.GroupOf(origin[f.ID])
			if !ok || groupLive[p] {
				continue
			}
			for _, r := range f.Routes {
				if fabric.IsRoute(r) {
					groupLive[p] = true
					break
				}
			}
		}
	}
	kept := backlog.Flows[:0]
	for i := range backlog.Flows {
		f := backlog.Flows[i]
		alive := f.Routes[:0:0]
		for _, r := range f.Routes {
			if fabric.IsRoute(r) {
				alive = append(alive, r)
			}
		}
		switch {
		case len(alive) == len(f.Routes):
			// Fully intact: nothing to do.
		case len(alive) > 0:
			// Some candidates died; the survivors carry the flow.
			f.Routes = alive
		default:
			orig := int64(origin[f.ID])
			if p, ok := red.GroupOf(origin[f.ID]); ok && groupLive[p] {
				// A sibling copy survives with a live route: the dead
				// copy's packets are redundant, not lost.
				stat.SurvivedRedundant += f.Size
				rec.Dedup(orig, epoch, int64(f.Size))
				continue
			}
			if !reactive {
				stat.Dropped += f.Size
				rec.Dropped(orig, epoch, int64(f.Size))
				continue
			}
			r, ok := traffic.ShortestRoute(fabric, f.Src, f.Dst)
			if !ok {
				stat.Dropped += f.Size
				rec.Dropped(orig, epoch, int64(f.Size))
				continue
			}
			if f.WeightHops > 0 && r.Hops() > f.WeightHops {
				// Keep the weight override consistent with the longer
				// repaired route (weights may only get smaller).
				f.WeightHops = r.Hops()
			}
			f.Routes = []traffic.Route{r}
			stat.Rerouted += f.Size
			rec.Repaired(orig, epoch, r.Hops(), int64(f.Size))
			if f.Src != arrivalSrc[origin[f.ID]] {
				stat.Stranded += f.Size
				rec.Requeued(orig, epoch, f.Src, int64(f.Size))
			}
		}
		kept = append(kept, f)
	}
	backlog.Flows = kept
}

// uniqueDelivered deduplicates cumulative per-arrival delivery counts:
// ungrouped flows count their own packets, and each redundancy group counts
// its best copy once.
func uniqueDelivered(deliveredBy map[int]int, red *traffic.Redundancy, members map[int][]int) int {
	unique := 0
	for id, d := range deliveredBy {
		if _, ok := red.GroupOf(id); !ok {
			unique += d
		}
	}
	for _, ids := range members {
		best := 0
		for _, id := range ids {
			if d := deliveredBy[id]; d > best {
				best = d
			}
		}
		unique += best
	}
	return unique
}

// auditEpoch validates the epoch's plan against the fabric it was planned
// for, independently of the scheduler's own bookkeeping. For plain plans the
// replayed delivery must match the plan's claim exactly; Octopus+ and
// chained-benefit plans keep bookkeeping a forward replay cannot reproduce,
// so only the feasibility invariants are enforced for them.
func auditEpoch(fabric *graph.Digraph, load *traffic.Load, plan *core.Result, coreOpt core.Options, epoch int) error {
	vopt := verify.Options{
		Window:    coreOpt.Window,
		Ports:     coreOpt.Ports,
		MultiHop:  coreOpt.MultiHop,
		Epsilon64: coreOpt.Epsilon64,
	}
	if !coreOpt.MultiRoute && !coreOpt.MultiHop {
		vopt.Claim = &verify.Claim{Delivered: plan.Delivered, Hops: plan.Hops, Psi: plan.Psi}
	}
	if _, err := verify.Schedule(fabric, load, plan.Schedule, vopt); err != nil {
		return fmt.Errorf("engine: epoch %d plan failed verification against the surviving fabric: %w", epoch, err)
	}
	return nil
}
