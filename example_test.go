package octopus_test

import (
	"fmt"
	"log"
	"math/rand"

	"octopus"
)

// ExampleSchedule plans and measures a small MHS instance end to end.
func ExampleSchedule() {
	// A 3-hop relay fabric: 0 -> 1 -> 2, plus a direct 0 -> 2 link.
	g := octopus.New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	load := &octopus.Load{Flows: []octopus.Flow{
		{ID: 1, Size: 40, Src: 0, Dst: 2, Routes: []octopus.Route{{0, 1, 2}}},
		{ID: 2, Size: 40, Src: 0, Dst: 2, Routes: []octopus.Route{{0, 2}}},
	}}
	res, err := octopus.Schedule(g, load, octopus.Options{Window: 200, Delta: 5})
	if err != nil {
		log.Fatal(err)
	}
	meas, err := octopus.Measure(g, load, res.Schedule, octopus.SimOptions{Window: 200})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("delivered %d of %d packets\n", meas.Delivered, meas.TotalPackets)
	// Output:
	// delivered 80 of 80 packets
}

// ExampleMakespan finds the smallest window that fully serves a load.
func ExampleMakespan() {
	g := octopus.Complete(2)
	load := &octopus.Load{Flows: []octopus.Flow{
		{ID: 1, Size: 25, Src: 0, Dst: 1, Routes: []octopus.Route{{0, 1}}},
	}}
	w, _, err := octopus.Makespan(g, load, octopus.Options{Delta: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("makespan: %d slots (25 packets + one reconfiguration)\n", w)
	// Output:
	// makespan: 30 slots (25 packets + one reconfiguration)
}

// ExampleRunWindows drains a burst across scheduling windows.
func ExampleRunWindows() {
	g := octopus.Complete(2)
	load := &octopus.Load{Flows: []octopus.Flow{
		{ID: 1, Size: 100, Src: 0, Dst: 1, Routes: []octopus.Route{{0, 1}}},
	}}
	ws, err := octopus.RunWindows(g, load, octopus.Options{Window: 45, Delta: 5}, 10)
	if err != nil {
		log.Fatal(err)
	}
	for i, w := range ws {
		fmt.Printf("window %d: delivered %d, residual %d\n", i+1, w.Result.Delivered, w.Residual)
	}
	// Output:
	// window 1: delivered 40, residual 60
	// window 2: delivered 40, residual 20
	// window 3: delivered 20, residual 0
}

// ExampleSynthetic generates the paper's synthetic workload.
func ExampleSynthetic() {
	g := octopus.Complete(10)
	rng := rand.New(rand.NewSource(1))
	load, err := octopus.Synthetic(g, octopus.DefaultSyntheticParams(10, 100), rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("flows per port: %d, packets per port: %d\n",
		len(load.Flows)/10, load.TotalPackets()/10)
	// Output:
	// flows per port: 2, packets per port: 100
}
